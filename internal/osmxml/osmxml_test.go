package osmxml

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"rased/internal/osm"
)

func ts(s string) time.Time {
	t, err := time.Parse(TimeFormat, s)
	if err != nil {
		panic(err)
	}
	return t
}

func sampleElements() []*osm.Element {
	return []*osm.Element{
		{
			Type: osm.Node, ID: 101, Version: 1, Timestamp: ts("2021-03-05T10:00:00Z"),
			ChangesetID: 7, UID: 42, User: "mapper", Visible: true,
			Lat: 44.97, Lon: -93.26,
			Tags: map[string]string{"highway": "traffic_signals"},
		},
		{
			Type: osm.Way, ID: 202, Version: 3, Timestamp: ts("2021-03-05T11:00:00Z"),
			ChangesetID: 7, UID: 42, User: "mapper", Visible: true,
			NodeRefs: []int64{101, 102, 103},
			Tags:     map[string]string{"highway": "residential", "name": "Elm Street"},
		},
		{
			Type: osm.Relation, ID: 303, Version: 2, Timestamp: ts("2021-03-05T12:00:00Z"),
			ChangesetID: 8, UID: 43, User: "editor", Visible: true,
			Members: []osm.Member{{Type: osm.Way, Ref: 202, Role: "outer"}, {Type: osm.Node, Ref: 101, Role: ""}},
			Tags:    map[string]string{"route": "road", "ref": "I-94"},
		},
	}
}

func elementsEqual(t *testing.T, a, b *osm.Element) {
	t.Helper()
	if a.Type != b.Type || a.ID != b.ID || a.Version != b.Version ||
		a.ChangesetID != b.ChangesetID || a.UID != b.UID || a.User != b.User ||
		a.Visible != b.Visible || !a.Timestamp.Equal(b.Timestamp) {
		t.Fatalf("header mismatch:\n%+v\n%+v", a, b)
	}
	if a.Type == osm.Node && (a.Lat != b.Lat || a.Lon != b.Lon) {
		t.Fatalf("coords mismatch: %+v vs %+v", a, b)
	}
	if !reflect.DeepEqual(a.NodeRefs, b.NodeRefs) {
		t.Fatalf("refs mismatch: %v vs %v", a.NodeRefs, b.NodeRefs)
	}
	if !reflect.DeepEqual(a.Members, b.Members) {
		t.Fatalf("members mismatch: %v vs %v", a.Members, b.Members)
	}
	if !osm.SameTags(a, b) {
		t.Fatalf("tags mismatch: %v vs %v", a.Tags, b.Tags)
	}
}

func TestChangeRoundTrip(t *testing.T) {
	els := sampleElements()
	ch := &Change{Items: []ChangeItem{
		{Create, els[0]},
		{Create, els[1]},
		{Modify, els[2]},
		{Delete, els[0].Clone()},
	}}
	ch.Items[3].Element.Visible = false

	var buf bytes.Buffer
	if err := WriteChange(&buf, ch); err != nil {
		t.Fatal(err)
	}
	got, err := ReadChange(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Items) != len(ch.Items) {
		t.Fatalf("items = %d, want %d", len(got.Items), len(ch.Items))
	}
	for i := range got.Items {
		if got.Items[i].Action != ch.Items[i].Action {
			t.Errorf("item %d action = %v, want %v", i, got.Items[i].Action, ch.Items[i].Action)
		}
		elementsEqual(t, ch.Items[i].Element, got.Items[i].Element)
	}
}

func TestChangeDeleteForcesInvisible(t *testing.T) {
	e := sampleElements()[0]
	e.Visible = true // writer records what it is given
	ch := &Change{Items: []ChangeItem{{Delete, e}}}
	var buf bytes.Buffer
	if err := WriteChange(&buf, ch); err != nil {
		t.Fatal(err)
	}
	got, err := ReadChange(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Items[0].Element.Visible {
		t.Error("element in delete block should read back invisible")
	}
}

func TestHistoryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	hw, err := NewHistoryWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	els := sampleElements()
	// History includes invisible (deleted) versions.
	deleted := els[0].Clone()
	deleted.Version = 2
	deleted.Visible = false
	all := append(els, deleted)
	for _, e := range all {
		if err := hw.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := hw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := hw.Close(); err != nil {
		t.Fatal("double close should be nil:", err)
	}
	if err := hw.Add(els[0]); err == nil {
		t.Error("Add after Close should fail")
	}

	hr := NewHistoryReader(&buf)
	var got []*osm.Element
	for {
		e, err := hr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, e)
	}
	if len(got) != len(all) {
		t.Fatalf("read %d elements, want %d", len(got), len(all))
	}
	for i := range got {
		elementsEqual(t, all[i], got[i])
	}
}

func TestChangesetsRoundTrip(t *testing.T) {
	sets := []osm.Changeset{
		{
			ID: 7, CreatedAt: ts("2021-03-05T09:00:00Z"), ClosedAt: ts("2021-03-05T10:30:00Z"),
			User: "mapper", UID: 42, NumChanges: 12,
			MinLat: 44.9, MinLon: -93.3, MaxLat: 45.0, MaxLon: -93.2,
			Tags: map[string]string{"comment": "fix elm street", "created_by": "JOSM"},
		},
		{
			ID: 8, CreatedAt: ts("2021-03-05T09:10:00Z"),
			User: "editor", UID: 43, NumChanges: 1,
			MinLat: 1, MinLon: 2, MaxLat: 3, MaxLon: 4,
		},
	}
	var buf bytes.Buffer
	if err := WriteChangesets(&buf, sets); err != nil {
		t.Fatal(err)
	}
	got, err := ReadChangesets(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d changesets", len(got))
	}
	for i := range got {
		a, b := sets[i], got[i]
		if a.ID != b.ID || a.User != b.User || a.UID != b.UID || a.NumChanges != b.NumChanges ||
			!a.CreatedAt.Equal(b.CreatedAt) || !a.ClosedAt.Equal(b.ClosedAt) {
			t.Errorf("changeset %d header mismatch:\n%+v\n%+v", i, a, b)
		}
		if a.MinLat != b.MinLat || a.MinLon != b.MinLon || a.MaxLat != b.MaxLat || a.MaxLon != b.MaxLon {
			t.Errorf("changeset %d bbox mismatch", i)
		}
		if !reflect.DeepEqual(a.Tags, b.Tags) {
			t.Errorf("changeset %d tags mismatch: %v vs %v", i, a.Tags, b.Tags)
		}
	}
}

func TestTruncatedInputs(t *testing.T) {
	full := func() string {
		var buf bytes.Buffer
		ch := &Change{Items: []ChangeItem{{Create, sampleElements()[0]}}}
		if err := WriteChange(&buf, ch); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}()
	// Cut the document mid-element: the reader must surface an error, not
	// hang or silently succeed.
	trunc := full[:len(full)/2]
	cr := NewChangeReader(strings.NewReader(trunc))
	var err error
	for err == nil {
		_, err = cr.Next()
	}
	if err == io.EOF {
		// Acceptable only if the cut happened to fall between elements; for
		// a mid-element cut we demand a real error.
		if strings.Contains(trunc, "<node") && !strings.Contains(trunc, "</create>") {
			t.Error("truncated change should yield an error")
		}
	}

	if _, err := ReadChangesets(strings.NewReader(`<osm><changeset id="1" min_lat="abc"`)); err == nil {
		t.Error("malformed changeset should error")
	}
	hr := NewHistoryReader(strings.NewReader(`<osm><node id="1" timestamp="bogus"/></osm>`))
	if _, err := hr.Next(); err == nil {
		t.Error("bad timestamp should error")
	}
}

func TestElementOutsideActionBlock(t *testing.T) {
	doc := `<osmChange version="0.6"><node id="1" version="1" timestamp="2021-01-01T00:00:00Z" changeset="1" lat="0" lon="0"/></osmChange>`
	cr := NewChangeReader(strings.NewReader(doc))
	if _, err := cr.Next(); err == nil {
		t.Error("element outside action block should error")
	}
}

func TestUnknownRelationMemberType(t *testing.T) {
	doc := `<osm><relation id="1" version="1" timestamp="2021-01-01T00:00:00Z" changeset="1"><member type="turtle" ref="5" role=""/></relation></osm>`
	hr := NewHistoryReader(strings.NewReader(doc))
	if _, err := hr.Next(); err == nil {
		t.Error("unknown member type should error")
	}
}

// TestChangeRoundTripRandom fuzzes the codec with generated elements.
func TestChangeRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	base := ts("2019-06-01T00:00:00Z")
	randEl := func() *osm.Element {
		e := &osm.Element{
			ID:          rng.Int63n(1 << 40),
			Version:     1 + rng.Intn(50),
			Timestamp:   base.Add(time.Duration(rng.Intn(86400)) * time.Second),
			ChangesetID: rng.Int63n(1 << 30),
			UID:         rng.Int63n(1 << 20),
			User:        "u" + string(rune('a'+rng.Intn(26))),
			Visible:     rng.Intn(2) == 0,
		}
		switch rng.Intn(3) {
		case 0:
			e.Type = osm.Node
			e.Lat = rng.Float64()*170 - 85
			e.Lon = rng.Float64()*360 - 180
		case 1:
			e.Type = osm.Way
			for i := 0; i < 1+rng.Intn(6); i++ {
				e.NodeRefs = append(e.NodeRefs, rng.Int63n(1<<30))
			}
		default:
			e.Type = osm.Relation
			for i := 0; i < 1+rng.Intn(4); i++ {
				e.Members = append(e.Members, osm.Member{
					Type: osm.ElementType(rng.Intn(3)),
					Ref:  rng.Int63n(1 << 30),
					Role: []string{"", "outer", "inner", "via"}[rng.Intn(4)],
				})
			}
		}
		for i := 0; i < rng.Intn(4); i++ {
			e.SetTag("k"+string(rune('0'+i)), "v"+string(rune('a'+rng.Intn(26))))
		}
		return e
	}
	for trial := 0; trial < 20; trial++ {
		var items []ChangeItem
		for i := 0; i < 1+rng.Intn(10); i++ {
			items = append(items, ChangeItem{ChangeAction(rng.Intn(3)), randEl()})
		}
		var buf bytes.Buffer
		if err := WriteChange(&buf, &Change{Items: items}); err != nil {
			t.Fatal(err)
		}
		got, err := ReadChange(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Items) != len(items) {
			t.Fatalf("trial %d: %d items, want %d", trial, len(got.Items), len(items))
		}
		for i := range items {
			want := items[i].Element
			if items[i].Action == Delete {
				want = want.Clone()
				want.Visible = false
			}
			elementsEqual(t, want, got.Items[i].Element)
		}
	}
}

func TestActionString(t *testing.T) {
	if Create.String() != "create" || Modify.String() != "modify" || Delete.String() != "delete" {
		t.Error("action names wrong")
	}
}
