package benchx

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"rased/internal/cluster"
	"rased/internal/core"
	"rased/internal/exec"
	"rased/internal/temporal"
)

// ---------------------------------------------------------------------------
// Cluster experiment: the scatter-gather query tier under a Zipf-skewed
// dashboard workload. Two phases over one shared deployment:
//
//  1. Scaling — closed-loop clients against 1, 4, and 8 shards. The skewed
//     single-country traffic routes to single owners, so aggregate QPS should
//     grow near-linearly with the shard count; the unfiltered dashboard
//     queries fan out to every shard and bound the speedup from above
//     (Amdahl on scatter width).
//  2. Tail latency — at the widest shard count, a seeded latency hiccup is
//     injected into the RPC fabric and the same workload runs with hedging
//     off, then on. Hedging must cut p99 to <= 0.8x of the unhedged run.
//
// Throughout both phases every Nth routed answer is cross-checked against a
// single-node oracle engine over the same index; any mismatch or untyped
// error fails the figure (hard gate, same style as the live and fault
// figures).

// ClusterPoint is one shard-count measurement of the scaling phase.
type ClusterPoint struct {
	Shards      int     `json:"shards"`
	Replication int     `json:"replication"`
	Queries     int64   `json:"queries"`
	Rejections  int64   `json:"rejections"`
	QPS         float64 `json:"qps"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	SpeedupVs1  float64 `json:"speedup_vs_1"`
}

// ClusterReport is the figure's output.
type ClusterReport struct {
	Quick     bool  `json:"quick"`
	Years     int   `json:"years"`
	Countries int   `json:"countries"`
	Groups    int   `json:"groups"`
	Clients   int   `json:"clients"`
	Seed      int64 `json:"seed"`

	Points []ClusterPoint `json:"points"`

	// Tail-latency phase, run at the widest shard count.
	HedgeShards   int     `json:"hedge_shards"`
	HiccupProb    float64 `json:"hiccup_prob"`
	HiccupMs      float64 `json:"hiccup_ms"`
	UnhedgedP50Ms float64 `json:"unhedged_p50_ms"`
	UnhedgedP99Ms float64 `json:"unhedged_p99_ms"`
	HedgedP50Ms   float64 `json:"hedged_p50_ms"`
	HedgedP99Ms   float64 `json:"hedged_p99_ms"`
	HedgeP99Ratio float64 `json:"hedge_p99_ratio"` // hedged / unhedged
	HedgesFired   int64   `json:"hedges_fired"`
	HedgesWon     int64   `json:"hedges_won"`

	// Correctness across every run of both phases.
	OracleChecks  int64 `json:"oracle_checks"`
	WrongResults  int64 `json:"wrong_results"`
	UntypedErrors int64 `json:"untyped_errors"`
}

// clusterParams sizes the run.
type clusterParams struct {
	years      int
	shards     []int
	groups     int
	clients    int
	scaleDur   time.Duration
	hedgeDur   time.Duration
	hiccupProb float64
	hiccupDur  time.Duration
	checkEvery int
	gated      bool // enforce the speedup and hedge-ratio gates
}

func clusterDefaults(quick bool) clusterParams {
	if quick {
		// The 2-shard CI smoke: exercises the whole path (partition math,
		// scatter, merge, hedging, oracle checks) without asserting the
		// scaling shape a 2-point sweep cannot show.
		return clusterParams{
			years: 2, shards: []int{1, 2}, groups: 8, clients: 8,
			scaleDur: 400 * time.Millisecond, hedgeDur: 700 * time.Millisecond,
			hiccupProb: 0.03, hiccupDur: 100 * time.Millisecond,
			checkEvery: 8, gated: false,
		}
	}
	return clusterParams{
		years: 3, shards: []int{1, 4, 8}, groups: 8, clients: 32,
		scaleDur: 2 * time.Second, hedgeDur: 3 * time.Second,
		hiccupProb: 0.03, hiccupDur: 100 * time.Millisecond,
		checkEvery: 16, gated: true,
	}
}

// clusterWorkload synthesizes the dashboard mix: 80% single-country queries
// with Zipf-skewed country choice (hot countries hammer hot partitions), 20%
// unfiltered whole-coverage queries that scatter to every shard.
type clusterWorkload struct {
	ws         *Workspace
	countryCDF []float64
}

func newClusterWorkload(ws *Workspace) *clusterWorkload {
	w := make([]float64, len(ws.Schema.Countries))
	for i := range w {
		w[i] = 1.0 / float64(i+1)
	}
	return &clusterWorkload{ws: ws, countryCDF: cdf(w)}
}

func (w *clusterWorkload) query(rng *rand.Rand) core.Query {
	if rng.Float64() < 0.8 {
		c := pickCDF(rng, w.countryCDF)
		// A narrow span range keeps per-query work (and therefore clean RPC
		// latency) roughly uniform, so the adaptive hedge percentile tracks
		// the injected hiccups instead of the workload's own size variance.
		span := temporal.Day(60 + rng.Intn(60))
		hi := w.ws.Lo + temporal.Day(rng.Intn(int(w.ws.Hi-w.ws.Lo)+1))
		lo := hi - span
		if lo < w.ws.Lo {
			lo = w.ws.Lo
		}
		return core.Query{
			From: lo, To: hi,
			Countries: []string{w.ws.Schema.Countries[c]},
			GroupBy:   core.GroupBy{Date: core.ByMonth},
		}
	}
	return core.Query{From: w.ws.Lo, To: w.ws.Hi, GroupBy: core.GroupBy{Country: true}}
}

// pickCDF draws an index from a cumulative distribution.
func pickCDF(rng *rand.Rand, c []float64) int {
	x := rng.Float64()
	lo, hi := 0, len(c)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// clusterTier is one built shard tier: a router over n in-process shards.
type clusterTier struct {
	m  *cluster.Map
	tr *cluster.LocalTransport
	rt *cluster.Router
}

func buildClusterTier(ws *Workspace, n, groups int, cfg cluster.RouterConfig) (*clusterTier, error) {
	repl := 2
	if repl > n {
		repl = n
	}
	m := &cluster.Map{
		Version: 1, Groups: groups, Replication: repl,
		Countries: len(ws.Schema.Countries),
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("s%d", i)
		m.Shards = append(m.Shards, cluster.Shard{ID: id, Addr: id})
	}
	tr := cluster.NewLocalTransport()
	for _, sh := range m.Shards {
		// Per-shard admission models one process's CPU budget: MaxInflight
		// slots of concurrently executing sub-plans, a bounded queue behind
		// them. The scaling phase measures how capacity adds up with shards.
		eng, err := core.NewEngine(ws.Index, core.Options{
			LevelOptimization: true,
			MaxInflight:       2,
			MaxQueue:          64,
		})
		if err != nil {
			return nil, err
		}
		srv, err := cluster.NewShardServer(sh.ID, m, eng, nil)
		if err != nil {
			return nil, err
		}
		tr.Register(sh.Addr, srv)
	}
	rt, err := cluster.NewRouter(m, tr, cfg)
	if err != nil {
		return nil, err
	}
	return &clusterTier{m: m, tr: tr, rt: rt}, nil
}

// clusterRun aggregates one measured client phase.
type clusterRun struct {
	queries    int64
	rejections int64
	untyped    int64
	checks     int64
	wrong      int64
	qps        float64
	lats       []time.Duration
}

// runClusterClients drives closed-loop clients against the router for dur.
// Rejections back off briefly and retry (counted, not failed); every
// checkEvery-th success is compared against the oracle.
func runClusterClients(ctx context.Context, rt *cluster.Router, oracle *core.Engine,
	wl *clusterWorkload, clients int, dur time.Duration, seed int64, checkEvery int) (*clusterRun, error) {

	run := &clusterRun{}
	var mu sync.Mutex
	var stop atomic.Bool
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(c)*104729))
			var lats []time.Duration
			for n := 0; !stop.Load(); n++ {
				q := wl.query(rng)
				t0 := time.Now()
				res, err := rt.AnalyzeContext(ctx, q)
				took := time.Since(t0)
				if err != nil {
					if errors.Is(err, exec.ErrRejected) {
						atomic.AddInt64(&run.rejections, 1)
						time.Sleep(time.Millisecond)
						continue
					}
					if ctx.Err() != nil {
						return
					}
					atomic.AddInt64(&run.untyped, 1)
					continue
				}
				atomic.AddInt64(&run.queries, 1)
				lats = append(lats, took)
				if n%checkEvery == 0 {
					want, oerr := oracle.AnalyzeContext(ctx, q)
					if oerr == nil {
						atomic.AddInt64(&run.checks, 1)
						if res.Total != want.Total || !reflect.DeepEqual(res.Rows, want.Rows) {
							atomic.AddInt64(&run.wrong, 1)
						}
					}
				}
			}
			mu.Lock()
			run.lats = append(run.lats, lats...)
			mu.Unlock()
		}(c)
	}
	select {
	case <-time.After(dur):
	case <-ctx.Done():
	}
	stop.Store(true)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s := time.Since(start).Seconds(); s > 0 {
		run.qps = float64(run.queries) / s
	}
	return run, nil
}

// FigCluster builds the shared deployment and runs both phases. Gates (full
// mode): >= 3.0x aggregate QPS at the widest shard count vs 1 shard, hedged
// p99 <= 0.8x unhedged p99, and — in every mode — zero wrong results and zero
// untyped errors.
func FigCluster(ctx context.Context, quick bool, seed int64) (*ClusterReport, error) {
	p := clusterDefaults(quick)
	cfg := DefaultWorkspaceConfig()
	cfg.Years = p.years
	cfg.Seed = seed
	// Per-page read latency is the dominant cost in this figure's service
	// model: a shard's capacity is its admission slots over a sleep-dominated
	// service time, so adding shards adds real capacity even on a small
	// machine, while the CPU cost of decoding stays a minor term. The hiccup
	// injected in phase 2 (100ms) then sits far above clean sub-plan latency
	// (low tens of ms) — the regime hedging is built for.
	cfg.ReadLatency = 600 * time.Microsecond
	ws, err := NewWorkspace(cfg)
	if err != nil {
		return nil, err
	}
	defer ws.Close()

	// The oracle answers the same queries single-node, with the full cache
	// configuration, for cross-checking routed results.
	oracle, err := core.NewEngine(ws.Index, core.DefaultOptions())
	if err != nil {
		return nil, err
	}

	wl := newClusterWorkload(ws)
	rep := &ClusterReport{
		Quick: quick, Years: p.years, Countries: len(ws.Schema.Countries),
		Groups: p.groups, Clients: p.clients, Seed: seed,
		HiccupProb: p.hiccupProb, HiccupMs: float64(p.hiccupDur) / float64(time.Millisecond),
	}

	// Phase 1: scaling sweep, hedging off so every point measures the plain
	// scatter-gather capacity.
	for _, n := range p.shards {
		tier, err := buildClusterTier(ws, n, p.groups, cluster.RouterConfig{
			DisableHedging: true,
			// Rotate sub-plan attempts across replicas: the Zipf-hot
			// partitions would otherwise serialize on their primary while the
			// replicas idle.
			SpreadReplicas: true,
		})
		if err != nil {
			return nil, err
		}
		run, err := runClusterClients(ctx, tier.rt, oracle, wl, p.clients, p.scaleDur, seed+int64(n), p.checkEvery)
		if err != nil {
			return nil, err
		}
		pt := ClusterPoint{
			Shards: n, Replication: tier.m.Replication,
			Queries: run.queries, Rejections: run.rejections, QPS: run.qps,
			P50Ms: float64(percentileDur(run.lats, 0.50)) / float64(time.Millisecond),
			P99Ms: float64(percentileDur(run.lats, 0.99)) / float64(time.Millisecond),
		}
		if len(rep.Points) > 0 && rep.Points[0].QPS > 0 {
			pt.SpeedupVs1 = pt.QPS / rep.Points[0].QPS
		} else if len(rep.Points) == 0 {
			pt.SpeedupVs1 = 1
		}
		rep.Points = append(rep.Points, pt)
		rep.OracleChecks += run.checks
		rep.WrongResults += run.wrong
		rep.UntypedErrors += run.untyped
	}

	// Phase 2: tail latency at the widest shard count under injected RPC
	// hiccups — the latency tail hedging exists to cut. Unhedged first, then
	// hedged with the adaptive percentile policy (p90 of observed latencies,
	// so the estimate tracks the clean latency below the hiccup mass).
	rep.HedgeShards = p.shards[len(p.shards)-1]
	hedgeClients := p.clients / 4
	if hedgeClients < 4 {
		hedgeClients = 4
	}
	for _, hedged := range []bool{false, true} {
		rcfg := cluster.RouterConfig{DisableHedging: !hedged, HedgePercentile: 0.90, SpreadReplicas: true}
		tier, err := buildClusterTier(ws, rep.HedgeShards, p.groups, rcfg)
		if err != nil {
			return nil, err
		}
		tier.tr.SetHiccups(p.hiccupProb, p.hiccupDur, seed+101)
		if hedged {
			// Warm the router's latency ring so the adaptive hedge delay is
			// live from the first measured query.
			warm := rand.New(rand.NewSource(seed + 7))
			for i := 0; i < 48; i++ {
				if _, err := tier.rt.AnalyzeContext(ctx, wl.query(warm)); err != nil && ctx.Err() != nil {
					return nil, err
				}
			}
		}
		run, err := runClusterClients(ctx, tier.rt, oracle, wl, hedgeClients, p.hedgeDur, seed+202, p.checkEvery)
		if err != nil {
			return nil, err
		}
		p50 := float64(percentileDur(run.lats, 0.50)) / float64(time.Millisecond)
		p99 := float64(percentileDur(run.lats, 0.99)) / float64(time.Millisecond)
		if hedged {
			rep.HedgedP50Ms, rep.HedgedP99Ms = p50, p99
			rep.HedgesFired = tier.rt.Metrics().HedgesFired.Value()
			rep.HedgesWon = tier.rt.Metrics().HedgesWon.Value()
		} else {
			rep.UnhedgedP50Ms, rep.UnhedgedP99Ms = p50, p99
		}
		rep.OracleChecks += run.checks
		rep.WrongResults += run.wrong
		rep.UntypedErrors += run.untyped
	}
	if rep.UnhedgedP99Ms > 0 {
		rep.HedgeP99Ratio = rep.HedgedP99Ms / rep.UnhedgedP99Ms
	}

	// Hard gates.
	if rep.WrongResults != 0 || rep.UntypedErrors != 0 {
		return rep, fmt.Errorf("benchx: cluster run violated the correctness contract: %d wrong results, %d untyped errors (%d oracle checks)",
			rep.WrongResults, rep.UntypedErrors, rep.OracleChecks)
	}
	if p.gated {
		last := rep.Points[len(rep.Points)-1]
		if last.SpeedupVs1 < 3.0 {
			return rep, fmt.Errorf("benchx: cluster scaling gate failed: %.2fx aggregate QPS at %d shards vs 1, want >= 3.0x",
				last.SpeedupVs1, last.Shards)
		}
		if rep.HedgeP99Ratio > 0.8 {
			return rep, fmt.Errorf("benchx: hedging gate failed: hedged p99 %.1fms / unhedged %.1fms = %.2f, want <= 0.8",
				rep.HedgedP99Ms, rep.UnhedgedP99Ms, rep.HedgeP99Ratio)
		}
	}
	return rep, nil
}

// WriteClusterJSON writes the figure as pretty-printed JSON.
func WriteClusterJSON(path string, rep *ClusterReport) error {
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("benchx: marshal cluster figure: %w", err)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return fmt.Errorf("benchx: write cluster figure: %w", err)
	}
	return nil
}

// PrintFigCluster renders the run.
func PrintFigCluster(w io.Writer, rep *ClusterReport) {
	fmt.Fprintln(w, "Cluster scale-out: scatter-gather QPS and hedged tail latency")
	fmt.Fprintf(w, "  %d-year deployment, %d countries in %d groups, %d closed-loop clients (seed %d)\n",
		rep.Years, rep.Countries, rep.Groups, rep.Clients, rep.Seed)
	fmt.Fprintf(w, "  %-7s %-5s %9s %5s %9s %9s %9s %9s\n",
		"shards", "repl", "queries", "rej", "qps", "p50 ms", "p99 ms", "speedup")
	for _, pt := range rep.Points {
		fmt.Fprintf(w, "  %-7d %-5d %9d %5d %9.0f %9.2f %9.2f %8.2fx\n",
			pt.Shards, pt.Replication, pt.Queries, pt.Rejections, pt.QPS, pt.P50Ms, pt.P99Ms, pt.SpeedupVs1)
	}
	fmt.Fprintf(w, "  tail latency at %d shards (hiccups: %.0f%% of RPCs +%.0fms):\n",
		rep.HedgeShards, 100*rep.HiccupProb, rep.HiccupMs)
	fmt.Fprintf(w, "    unhedged: p50 %.2fms  p99 %.2fms\n", rep.UnhedgedP50Ms, rep.UnhedgedP99Ms)
	fmt.Fprintf(w, "    hedged:   p50 %.2fms  p99 %.2fms  (ratio %.2f; %d hedges fired, %d won)\n",
		rep.HedgedP50Ms, rep.HedgedP99Ms, rep.HedgeP99Ratio, rep.HedgesFired, rep.HedgesWon)
	fmt.Fprintf(w, "  correctness: %d oracle checks, %d wrong results, %d untyped errors\n",
		rep.OracleChecks, rep.WrongResults, rep.UntypedErrors)
}
