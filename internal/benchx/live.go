package benchx

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"rased/internal/core"
	"rased/internal/crawl"
	"rased/internal/cube"
	"rased/internal/geo"
	"rased/internal/live"
	"rased/internal/osmgen"
	"rased/internal/temporal"
	"rased/internal/tindex"
)

// ---------------------------------------------------------------------------
// Live-ingest experiment: a batch-built deployment switches to continuous
// replication folding while concurrent dashboard clients keep querying it.
// The figure certifies the three acceptance properties of the live subsystem:
// ingest lag (emission to query visibility) stays bounded, query throughput
// under sustained epoch swaps stays close to the no-ingest baseline, and no
// client ever observes a torn read or a counter moving backwards.

// LiveReport is the figure's output.
type LiveReport struct {
	HistoryDays  int           `json:"history_days"`
	LiveDays     int           `json:"live_days"`
	ChunksPerDay int           `json:"chunks_per_day"`
	Interval     time.Duration `json:"interval_ns"`
	Clients      int           `json:"clients"`

	Folds      int64  `json:"folds"`
	FinalEpoch uint64 `json:"final_epoch"`

	// Ingest lag quantiles in seconds, from the pipeline's own histogram.
	P50LagSecs float64 `json:"p50_lag_seconds"`
	P95LagSecs float64 `json:"p95_lag_seconds"`

	// Query throughput with no ingest running vs during sustained folding.
	BaselineQPS float64 `json:"baseline_qps"`
	LiveQPS     float64 `json:"live_qps"`
	QPSRatio    float64 `json:"qps_ratio"` // live / baseline

	BaselineQueries int64 `json:"baseline_queries"`
	LiveQueries     int64 `json:"live_queries"`

	// Consistency violations observed by the clients; both must be zero.
	ReadErrors         int64 `json:"read_errors"`
	MonotoneViolations int64 `json:"monotone_violations"`
}

// liveParams sizes the run.
type liveParams struct {
	historyDays  int
	liveDays     int
	chunksPerDay int
	interval     time.Duration
	clients      int
}

func liveDefaults(quick bool) liveParams {
	if quick {
		return liveParams{historyDays: 14, liveDays: 2, chunksPerDay: 10, interval: 5 * time.Millisecond, clients: 4}
	}
	return liveParams{historyDays: 60, liveDays: 4, chunksPerDay: 30, interval: 150 * time.Millisecond, clients: 4}
}

// FigLive builds a deployment with batch history, measures a no-ingest query
// baseline, then folds a paced replication stream while the same client mix
// keeps querying. Any client-side read error or backwards-moving total fails
// the figure.
func FigLive(ctx context.Context, quick bool, seed int64) (*LiveReport, error) {
	p := liveDefaults(quick)
	dir, err := os.MkdirTemp("", "rased-live")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Batch history: whole-day artifacts through the classic crawl+append
	// path, the state a nightly-built deployment starts the day with.
	schema := cube.ScaledSchema(40, 10)
	ix, err := tindex.Create(dir, schema, temporal.NumLevels)
	if err != nil {
		return nil, err
	}
	defer ix.Close()
	histCfg := osmgen.DefaultConfig()
	histCfg.Seed = seed
	histCfg.UpdatesPerDay = 150
	gen := osmgen.New(histCfg)
	ing := core.NewIngestor(ix)
	csIdx := crawl.ChangesetIndex{}
	reg := geo.Default()
	for i := 0; i < p.historyDays; i++ {
		art := gen.NextDay()
		csIdx.Add(art.Changesets)
		recs, _, err := crawl.Daily(art.Change, csIdx, reg)
		if err != nil {
			return nil, err
		}
		kept := recs[:0]
		for _, r := range recs {
			if int(r.Country) < len(schema.Countries) && int(r.RoadType) < len(schema.RoadTypes) {
				kept = append(kept, r)
			}
		}
		if err := ing.AppendDay(art.Day, kept); err != nil {
			return nil, err
		}
	}
	if err := ix.Sync(); err != nil {
		return nil, err
	}

	// The sharded cache is the live-serving configuration: its entries carry
	// epoch stamps, so a republished period is re-cacheable the moment the
	// new epoch lands (the preload cache can only refuse stale hits).
	eng, err := core.NewEngine(ix, core.Options{
		CacheSlots:        256,
		CachePolicy:       "sharded",
		LevelOptimization: true,
		Singleflight:      true,
	})
	if err != nil {
		return nil, err
	}

	lo, hi, _ := ix.Coverage()
	rep := &LiveReport{
		HistoryDays: p.historyDays, LiveDays: p.liveDays,
		ChunksPerDay: p.chunksPerDay, Interval: p.interval, Clients: p.clients,
	}

	// The live stream continues the day sequence where batch history ends.
	liveCfg := histCfg
	liveCfg.Seed = seed + 1
	liveCfg.Start = hi + 1
	chunks := p.liveDays * p.chunksPerDay
	liveDur := time.Duration(chunks) * p.interval

	// Phase 1: fold the paced stream while the clients run. The pipeline
	// goroutine owns the index's write side; clients only read.
	pipe := live.NewPipeline(ix, live.Config{
		MaxCountry: len(schema.Countries),
		MaxRoad:    len(schema.RoadTypes),
		Engine:     eng,
	})
	src := live.NewSimSource(osmgen.NewDiffStream(liveCfg, p.chunksPerDay), p.interval, chunks)
	done := make(chan error, 1)
	go func() { done <- pipe.Run(ctx, src) }()
	liveRes, err := runLiveClients(ctx, eng, lo, hi+temporal.Day(p.liveDays), p.clients, seed+17, done, 0)
	if err != nil {
		return nil, err
	}
	if err := <-liveRes.pipeErr; err != nil {
		return nil, fmt.Errorf("benchx: live pipeline: %w", err)
	}
	rep.LiveQueries = liveRes.queries
	rep.LiveQPS = liveRes.qps
	rep.ReadErrors = liveRes.readErrors
	rep.MonotoneViolations = liveRes.monotone
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Phase 2: no-ingest baseline over the same deployment with the stream
	// quiesced — identical data and engine configuration, no concurrent
	// folding — for the same wall time, so the ratio isolates what sustained
	// epoch publication costs the read side.
	base, err := runLiveClients(ctx, eng, lo, hi+temporal.Day(p.liveDays), p.clients, seed, nil, liveDur)
	if err != nil {
		return nil, err
	}
	rep.BaselineQueries = base.queries
	rep.BaselineQPS = base.qps
	if rep.BaselineQPS > 0 {
		rep.QPSRatio = rep.LiveQPS / rep.BaselineQPS
	}

	st := pipe.Status()
	rep.Folds = st.Folds
	rep.FinalEpoch = st.Epoch
	lag := pipe.Metrics().IngestLag.Snapshot()
	rep.P50LagSecs = lag.Quantile(0.50)
	rep.P95LagSecs = lag.Quantile(0.95)

	if rep.ReadErrors != 0 || rep.MonotoneViolations != 0 {
		return rep, fmt.Errorf("benchx: live run violated the consistency contract: %d read errors, %d monotone violations",
			rep.ReadErrors, rep.MonotoneViolations)
	}
	if want := int64(chunks); rep.Folds != want {
		return rep, fmt.Errorf("benchx: live run folded %d chunks, want %d", rep.Folds, want)
	}
	return rep, nil
}

// liveClientResult aggregates one query phase.
type liveClientResult struct {
	queries    int64
	qps        float64
	readErrors int64
	monotone   int64
	pipeErr    chan error // the drained pipeline channel (live phase only)
}

// runLiveClients drives `clients` query goroutines until either the pipeline
// signals completion (pipeDone != nil) or the fixed duration elapses. Each
// client mixes recency-skewed single-cell queries with an unfiltered hot
// query spanning the live range, whose total must never move backwards —
// epochs are copy-on-write supersets, so a shrink is a torn or stale read.
func runLiveClients(ctx context.Context, eng *core.Engine, lo, hiPlus temporal.Day, clients int, seed int64, pipeDone chan error, dur time.Duration) (*liveClientResult, error) {
	var stop atomic.Bool
	res := &liveClientResult{pipeErr: make(chan error, 1)}
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(c)*7919))
			var lastTotal uint64
			for !stop.Load() {
				var q core.Query
				if rng.Intn(4) == 0 {
					// Hot query: everything, including the day being folded.
					q = core.Query{From: lo, To: hiPlus}
				} else {
					span := temporal.Day(1 + rng.Intn(90))
					qhi := hiPlus - temporal.Day(rng.Intn(30))
					q = core.Query{From: qhi - span, To: qhi}
				}
				r, err := eng.AnalyzeContext(ctx, q)
				if err != nil {
					atomic.AddInt64(&res.readErrors, 1)
					continue
				}
				if q.From == lo && q.To == hiPlus {
					if r.Total < lastTotal {
						atomic.AddInt64(&res.monotone, 1)
					} else {
						lastTotal = r.Total
					}
				}
				atomic.AddInt64(&res.queries, 1)
			}
		}(c)
	}

	if pipeDone != nil {
		select {
		case err := <-pipeDone:
			res.pipeErr <- err
		case <-ctx.Done():
			res.pipeErr <- ctx.Err()
		}
	} else {
		select {
		case <-time.After(dur):
			res.pipeErr <- nil
		case <-ctx.Done():
			res.pipeErr <- ctx.Err()
		}
	}
	stop.Store(true)
	wg.Wait()
	if s := time.Since(start).Seconds(); s > 0 {
		res.qps = float64(res.queries) / s
	}
	return res, nil
}

// WriteLiveJSON writes the figure as pretty-printed JSON.
func WriteLiveJSON(path string, rep *LiveReport) error {
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("benchx: marshal live figure: %w", err)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return fmt.Errorf("benchx: write live figure: %w", err)
	}
	return nil
}

// PrintFigLive renders the run.
func PrintFigLive(w io.Writer, rep *LiveReport) {
	fmt.Fprintln(w, "Live ingest: epoch publication under concurrent dashboard load")
	fmt.Fprintf(w, "  history %d days, live %d days x %d chunks at %v cadence, %d clients\n",
		rep.HistoryDays, rep.LiveDays, rep.ChunksPerDay, rep.Interval, rep.Clients)
	fmt.Fprintf(w, "  folds: %d (final epoch %d)\n", rep.Folds, rep.FinalEpoch)
	fmt.Fprintf(w, "  ingest lag: p50 %.1fms, p95 %.1fms\n", 1000*rep.P50LagSecs, 1000*rep.P95LagSecs)
	fmt.Fprintf(w, "  query throughput: %.0f qps live vs %.0f qps baseline (ratio %.2f)\n",
		rep.LiveQPS, rep.BaselineQPS, rep.QPSRatio)
	fmt.Fprintf(w, "  consistency: %d read errors, %d monotone violations\n",
		rep.ReadErrors, rep.MonotoneViolations)
}
