// Package benchx is RASED's experiment harness: it builds multi-year
// benchmark deployments and regenerates every figure of the paper's
// evaluation (Section VIII) — cache-size sweeps (Fig 7), index level storage
// (Fig 8), the component ablation RASED-F / RASED-O / RASED (Fig 9), and the
// comparison against a scan-based DBMS (Fig 10) — plus the example analysis
// queries of Figures 2-5.
//
// Deployments are scaled to laptop budgets: a reduced cube schema keeps pages
// tens of kilobytes instead of 4 MB, and pagestore latency injection models
// the production disk whose cost the paper's numbers reflect. Absolute times
// therefore differ from the paper; the asserted shapes (who wins, saturation
// points, orders of magnitude) are preserved because they depend only on how
// many pages each strategy touches.
package benchx

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"rased/internal/core"
	"rased/internal/cube"
	"rased/internal/dbms"
	"rased/internal/temporal"
	"rased/internal/tindex"
	"rased/internal/update"

	"path/filepath"

	"rased/internal/osm"
)

// WorkspaceConfig parameterizes a benchmark deployment.
type WorkspaceConfig struct {
	// Years of history (paper: up to 16).
	Years int
	// UpdatesPerDay is the mean synthetic update volume.
	UpdatesPerDay int
	// Seed drives the deterministic workload.
	Seed int64
	// Countries and RoadTypes bound the scaled schema (cube page size).
	Countries, RoadTypes int
	// ReadLatency is injected per page read to model the production disk.
	ReadLatency time.Duration
	// WithDBMS also loads the records into the baseline table (Fig 10).
	WithDBMS bool
	// DBMSBufferBytes is the baseline buffer pool budget.
	DBMSBufferBytes int64
}

// DefaultWorkspaceConfig returns the configuration the benchmarks use.
func DefaultWorkspaceConfig() WorkspaceConfig {
	return WorkspaceConfig{
		Years:           16,
		UpdatesPerDay:   150,
		Seed:            1,
		Countries:       40,
		RoadTypes:       10,
		ReadLatency:     200 * time.Microsecond,
		DBMSBufferBytes: 8 << 20,
	}
}

// Workspace is a built benchmark deployment.
type Workspace struct {
	Dir       string
	Cfg       WorkspaceConfig
	Schema    *cube.Schema
	Index     *tindex.Index
	Table     *dbms.Table          // nil unless WithDBMS
	Clustered *dbms.ClusteredTable // nil unless WithDBMS
	Lo, Hi    temporal.Day
	Records   int
}

// NewWorkspace builds the deployment in a fresh temp directory. Building a
// 16-year index takes a few seconds; callers share one workspace across
// measurements.
func NewWorkspace(cfg WorkspaceConfig) (*Workspace, error) {
	if cfg.Years < 1 {
		return nil, fmt.Errorf("benchx: years must be >= 1")
	}
	dir, err := os.MkdirTemp("", "rased-bench")
	if err != nil {
		return nil, err
	}
	ws := &Workspace{Dir: dir, Cfg: cfg}
	ws.Schema = cube.ScaledSchema(cfg.Countries, cfg.RoadTypes)
	ws.Index, err = tindex.Create(dir, ws.Schema, temporal.NumLevels)
	if err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	if cfg.WithDBMS {
		ws.Table, err = dbms.OpenTable(filepath.Join(dir, "table.db"), cfg.DBMSBufferBytes)
		if err != nil {
			ws.Close()
			return nil, err
		}
	}

	ws.Lo = temporal.NewDay(2005, time.January, 1)
	ws.Hi = temporal.NewDay(2005+cfg.Years-1, time.December, 31)
	gen := newWorkload(cfg, ws.Schema)
	ing := core.NewIngestor(ws.Index)
	var allRecs []update.Record // for the clustered baseline
	for d := ws.Lo; d <= ws.Hi; d++ {
		recs := gen.day(d)
		ws.Records += len(recs)
		cb, err := ing.BuildDayCube(d, recs)
		if err != nil {
			ws.Close()
			return nil, err
		}
		if err := ws.Index.AppendDay(d, cb); err != nil {
			ws.Close()
			return nil, err
		}
		if ws.Table != nil {
			if err := ws.Table.Add(recs); err != nil {
				ws.Close()
				return nil, err
			}
			allRecs = append(allRecs, recs...)
		}
	}
	if cfg.WithDBMS {
		ws.Clustered, err = dbms.BuildClustered(filepath.Join(dir, "clustered.db"), allRecs, cfg.DBMSBufferBytes)
		if err != nil {
			ws.Close()
			return nil, err
		}
	}
	if err := ws.Index.Sync(); err != nil {
		ws.Close()
		return nil, err
	}
	if ws.Table != nil {
		if err := ws.Table.Flush(); err != nil {
			ws.Close()
			return nil, err
		}
	}
	// Latency injection applies to queries, not the bulk load.
	ws.Index.Store().SetReadLatency(cfg.ReadLatency)
	if ws.Table != nil {
		ws.Table.Heap().Store().SetReadLatency(cfg.ReadLatency)
	}
	if ws.Clustered != nil {
		ws.Clustered.Heap().Store().SetReadLatency(cfg.ReadLatency)
	}
	return ws, nil
}

// Close releases the workspace and deletes its directory.
func (ws *Workspace) Close() error {
	if ws.Table != nil {
		ws.Table.Close()
	}
	if ws.Clustered != nil {
		ws.Clustered.Close()
	}
	var err error
	if ws.Index != nil {
		err = ws.Index.Close()
	}
	os.RemoveAll(ws.Dir)
	return err
}

// workload synthesizes skewed UpdateList records directly (no XML round
// trip): benchmark volume at generator-validated distribution shapes.
type workload struct {
	rng        *rand.Rand
	perDay     int
	countryCDF []float64
	roadCDF    []float64
	nCountries int
	nRoads     int
}

func newWorkload(cfg WorkspaceConfig, schema *cube.Schema) *workload {
	w := &workload{
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		perDay:     cfg.UpdatesPerDay,
		nCountries: len(schema.Countries),
		nRoads:     len(schema.RoadTypes),
	}
	cw := make([]float64, w.nCountries)
	for i := range cw {
		cw[i] = 1.0 / float64(i+1) // Zipf country activity
	}
	w.countryCDF = cdf(cw)
	rw := make([]float64, w.nRoads)
	for i := range rw {
		rw[i] = 1.0 / float64(i+2)
	}
	w.roadCDF = cdf(rw)
	return w
}

func cdf(weights []float64) []float64 {
	out := make([]float64, len(weights))
	var sum float64
	for i, v := range weights {
		sum += v
		out[i] = sum
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

func (w *workload) pick(cdf []float64) int {
	x := w.rng.Float64()
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// day produces one day's records.
func (w *workload) day(d temporal.Day) []update.Record {
	n := w.perDay/2 + w.rng.Intn(w.perDay+1)
	out := make([]update.Record, n)
	for i := range out {
		var et osm.ElementType
		switch x := w.rng.Float64(); {
		case x < 0.55:
			et = osm.Way
		case x < 0.99:
			et = osm.Node
		default:
			et = osm.Relation
		}
		var ut update.Type
		switch x := w.rng.Float64(); {
		case x < 0.35:
			ut = update.Create
		case x < 0.70:
			ut = update.GeometryUpdate
		case x < 0.90:
			ut = update.MetadataUpdate
		default:
			ut = update.Delete
		}
		out[i] = update.Record{
			ElementType: et,
			Day:         d,
			Country:     uint16(w.pick(w.countryCDF)),
			RoadType:    uint16(w.pick(w.roadCDF)),
			UpdateType:  ut,
			ChangesetID: w.rng.Int63n(1 << 30),
		}
	}
	return out
}
