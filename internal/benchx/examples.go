package benchx

import (
	"fmt"
	"io"

	"rased/internal/core"
	"rased/internal/temporal"
)

// Analyzer answers analysis queries; both *rased.Deployment and *core.Engine
// satisfy it.
type Analyzer interface {
	Analyze(q core.Query) (*core.Result, error)
}

// ExamplesReport holds the results of the paper's three example analysis
// queries (Section IV-A), whose visualizations are Figures 2-5.
type ExamplesReport struct {
	// Country is Example 1 / Figures 2-3: newly created or modified elements
	// per country and element type over one year.
	Country *core.Result
	// RoadType is Example 2 / Figure 4: created or modified elements per road
	// type and element type for one country since a date.
	RoadType *core.Result
	// TimeSeries is Example 3 / Figure 5: daily percentage of road network
	// change for a set of countries.
	TimeSeries *core.Result
}

// RunExamples executes the paper's example queries against an analyzer over
// the window [lo, hi] (the paper's concrete years are mapped into the
// deployment's coverage).
func RunExamples(a Analyzer, lo, hi temporal.Day) (*ExamplesReport, error) {
	rep := &ExamplesReport{}
	var err error

	// Example 1: SELECT Country, ElementType, COUNT(*) WHERE Date BETWEEN ...
	// AND UpdateType IN [New, Update] GROUP BY Country, ElementType.
	rep.Country, err = a.Analyze(core.Query{
		From: lo, To: hi,
		UpdateTypes: []string{"create", "geometry", "metadata"},
		GroupBy:     core.GroupBy{Country: true, ElementType: true},
	})
	if err != nil {
		return nil, fmt.Errorf("benchx: country analysis: %w", err)
	}

	// Example 2: per road type for the United States since a date.
	rep.RoadType, err = a.Analyze(core.Query{
		From: lo + (hi-lo)/2, To: hi,
		Countries:   []string{"United States"},
		UpdateTypes: []string{"create", "geometry", "metadata"},
		GroupBy:     core.GroupBy{RoadType: true, ElementType: true},
	})
	if err != nil {
		return nil, fmt.Errorf("benchx: road type analysis: %w", err)
	}

	// Example 3: daily percentage comparison for Germany, Singapore, Qatar.
	rep.TimeSeries, err = a.Analyze(core.Query{
		From: lo, To: hi,
		Countries:  []string{"Germany", "Singapore", "Qatar"},
		GroupBy:    core.GroupBy{Country: true, Date: core.ByDay},
		Percentage: true,
	})
	if err != nil {
		return nil, fmt.Errorf("benchx: time series analysis: %w", err)
	}
	return rep, nil
}

// PrintExamples renders the report like the paper's figures: a country table
// (Fig 3), a road-type table (Fig 4), and a time-series summary (Fig 5).
func PrintExamples(w io.Writer, rep *ExamplesReport) {
	fmt.Fprintln(w, "Example 1 (Figures 2-3): country analysis — top countries by updates")
	fmt.Fprintf(w, "%-28s%-12s%12s\n", "country", "element", "updates")
	for i, r := range rep.Country.Rows {
		if i >= 15 {
			fmt.Fprintf(w, "  ... %d more rows\n", len(rep.Country.Rows)-i)
			break
		}
		fmt.Fprintf(w, "%-28s%-12s%12d\n", r.Country, r.ElementType, r.Count)
	}
	fmt.Fprintf(w, "total: %d  (%.2f ms, %d cubes, %d disk reads)\n\n",
		rep.Country.Total, float64(rep.Country.Stats.ElapsedNanos)/1e6,
		rep.Country.Stats.CubesFetched, rep.Country.Stats.DiskReads)

	fmt.Fprintln(w, "Example 2 (Figure 4): road type analysis — United States")
	fmt.Fprintf(w, "%-28s%-12s%12s\n", "road type", "element", "updates")
	for i, r := range rep.RoadType.Rows {
		if i >= 15 {
			fmt.Fprintf(w, "  ... %d more rows\n", len(rep.RoadType.Rows)-i)
			break
		}
		fmt.Fprintf(w, "%-28s%-12s%12d\n", r.RoadType, r.ElementType, r.Count)
	}
	fmt.Fprintf(w, "total: %d  (%.2f ms)\n\n",
		rep.RoadType.Total, float64(rep.RoadType.Stats.ElapsedNanos)/1e6)

	fmt.Fprintln(w, "Example 3 (Figure 5): comparative daily time series (percentage)")
	byCountry := map[string]int{}
	maxPct := map[string]float64{}
	for _, r := range rep.TimeSeries.Rows {
		byCountry[r.Country]++
		if r.Percentage > maxPct[r.Country] {
			maxPct[r.Country] = r.Percentage
		}
	}
	for c, n := range byCountry {
		fmt.Fprintf(w, "%-28s%6d daily points, peak %.4f%% of network\n", c, n, maxPct[c])
	}
	fmt.Fprintf(w, "total points: %d  (%.2f ms)\n",
		len(rep.TimeSeries.Rows), float64(rep.TimeSeries.Stats.ElapsedNanos)/1e6)
}
