package benchx

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"rased/internal/core"
	"rased/internal/cube"
	"rased/internal/temporal"
)

// ---------------------------------------------------------------------------
// Hot-path experiment: the data-plane optimisations measured in isolation
// (micro benchmarks) and end to end (a concurrent-client sweep comparing the
// pre-optimisation engine configuration against the sharded/pooled/vectorized
// one on an identical workload).

// MicroResult is one micro benchmark measurement. Iters and TotalAllocs keep
// the raw benchmark totals so a path that allocates nothing at all can still
// be compared as a measured lower bound instead of a divide-by-zero.
type MicroResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iters       int64   `json:"iters"`
	TotalAllocs int64   `json:"total_allocs"`
}

// HotpathPoint is one (mode, client count) sweep measurement.
type HotpathPoint struct {
	Mode    string  `json:"mode"`
	Clients int     `json:"clients"`
	QPS     float64 `json:"qps"`
	P50Ms   float64 `json:"p50_ms"`
	P99Ms   float64 `json:"p99_ms"`
}

// HotpathSummary distills the acceptance numbers.
type HotpathSummary struct {
	// ThroughputX16 is the full hot path's QPS over the baseline's at the
	// highest swept client count.
	ThroughputX16 float64 `json:"throughput_x_16_clients"`
	// Cache-miss fetch path: allocations per op, eager decode vs pooled.
	MissAllocsBaseline int64   `json:"miss_fetch_allocs_baseline"`
	MissAllocsPooled   int64   `json:"miss_fetch_allocs_pooled"`
	MissBytesBaseline  int64   `json:"miss_fetch_bytes_baseline"`
	MissBytesPooled    int64   `json:"miss_fetch_bytes_pooled"`
	AllocReduction     float64 `json:"miss_fetch_alloc_reduction_x"`
}

// HotpathReport is the full experiment output.
type HotpathReport struct {
	Config struct {
		Years     int    `json:"years"`
		Countries int    `json:"countries"`
		RoadTypes int    `json:"road_types"`
		CubeCells int    `json:"cube_cells"`
		PageBytes int    `json:"page_bytes"`
		Clients   []int  `json:"clients"`
		PerClient int    `json:"per_client"`
		Latency   string `json:"read_latency"`
	} `json:"config"`
	Micro   []MicroResult  `json:"micro"`
	Sweep   []HotpathPoint `json:"sweep"`
	Summary HotpathSummary `json:"summary"`
}

// hotpathMode is one engine configuration of the sweep.
type hotpathMode struct {
	name string
	opts core.Options
}

// hotpathModes returns the swept configurations. The baseline is the pre-PR
// engine: preloaded cache, scalar aggregation, per-page reads. Each further
// mode layers on hot-path machinery; the last is the full configuration.
func hotpathModes(workers int) []hotpathMode {
	base := core.Options{
		CacheSlots:        512,
		LevelOptimization: true,
		FetchWorkers:      workers,
		Singleflight:      true,
	}
	baseline := base
	baseline.ScalarKernels = true

	sharded := base
	sharded.CachePolicy = "sharded"
	sharded.ScalarKernels = true

	full := base
	full.CachePolicy = "sharded"
	full.PooledDecode = true
	full.CoalesceReads = true

	return []hotpathMode{
		{name: "baseline", opts: baseline},
		{name: "sharded", opts: sharded},
		{name: "sharded+pool+vec", opts: full},
	}
}

// hotpathQuery draws one workload query: mostly group-by-country aggregations
// over recency-skewed last-year windows (the dashboard's country table, the
// paper's Figure 2 shape), some single-cell lookups, and every eighth query a
// cold scan over an old misaligned window (exercising the miss path: pooled
// decodes and coalesced daily runs).
func (ws *Workspace) hotpathQuery(rng *rand.Rand, i int) core.Query {
	if i%8 == 7 {
		span := temporal.Day(30 + rng.Intn(30))
		lo := ws.Lo + temporal.Day(rng.Intn(int(ws.Hi-ws.Lo-span)))
		return core.Query{From: lo, To: lo + span, GroupBy: core.GroupBy{Country: true}}
	}
	if i%8 < 5 {
		lo, hi := ws.recentWindow(rng, 365)
		return core.Query{From: lo, To: hi, GroupBy: core.GroupBy{Country: true}}
	}
	lo, hi := ws.recentWindow(rng, 90)
	return ws.singleCellQuery(rng, lo, hi)
}

// FigHotpath runs the hot-path experiment: micro benchmarks of the
// aggregation kernels and fetch paths, then the concurrent-client sweep.
func FigHotpath(ctx context.Context, ws *Workspace, clients []int, perClient, workers int, seed int64) (*HotpathReport, error) {
	rep := &HotpathReport{}
	rep.Config.Years = ws.Cfg.Years
	rep.Config.Countries = ws.Cfg.Countries
	rep.Config.RoadTypes = ws.Cfg.RoadTypes
	rep.Config.CubeCells = ws.Schema.CellCount()
	rep.Config.PageBytes = cube.PageSize(ws.Schema)
	rep.Config.Clients = clients
	rep.Config.PerClient = perClient
	rep.Config.Latency = ws.Cfg.ReadLatency.String()

	if err := hotpathMicro(ctx, ws, rep); err != nil {
		return nil, err
	}

	for _, m := range hotpathModes(workers) {
		eng, err := ws.newEngine(m.opts)
		if err != nil {
			return nil, err
		}
		// Untimed warmup: replay the widest client fan-out once so every mode
		// is measured at steady state. The preload baseline starts with a full
		// cache while the demand policies start empty; without this pass the
		// sweep would time cache population instead of the hot path.
		if _, err := runHotpathClients(ctx, ws, eng, m.name, maxInts(clients), perClient, seed); err != nil {
			return nil, err
		}
		for _, c := range clients {
			pt, err := runHotpathClients(ctx, ws, eng, m.name, c, perClient, seed)
			if err != nil {
				return nil, err
			}
			rep.Sweep = append(rep.Sweep, *pt)
		}
	}

	rep.Summary = summarizeHotpath(rep)
	return rep, nil
}

// runHotpathClients drives the mixed workload from `clients` goroutines.
func runHotpathClients(ctx context.Context, ws *Workspace, eng *core.Engine, mode string, clients, perClient int, seed int64) (*HotpathPoint, error) {
	lats := make([][]time.Duration, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(c)*7919))
			lats[c] = make([]time.Duration, 0, perClient)
			for i := 0; i < perClient; i++ {
				q := ws.hotpathQuery(rng, i)
				t0 := time.Now()
				if _, err := eng.AnalyzeContext(ctx, q); err != nil {
					errs[c] = err
					return
				}
				lats[c] = append(lats[c], time.Since(t0))
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	var all []time.Duration
	for c := 0; c < clients; c++ {
		if errs[c] != nil {
			return nil, fmt.Errorf("benchx: hotpath client %d: %w", c, errs[c])
		}
		all = append(all, lats[c]...)
	}
	return &HotpathPoint{
		Mode:    mode,
		Clients: clients,
		QPS:     float64(len(all)) / wall.Seconds(),
		P50Ms:   float64(percentileDur(all, 0.5)) / 1e6,
		P99Ms:   float64(percentileDur(all, 0.99)) / 1e6,
	}, nil
}

// hotpathMicro measures the kernels and fetch paths in isolation with the
// testing benchmark driver: ns/op, allocs/op, B/op.
func hotpathMicro(ctx context.Context, ws *Workspace, rep *HotpathReport) error {
	// A populated cube at the workspace schema.
	cb := cube.New(ws.Schema)
	rng := rand.New(rand.NewSource(99))
	de, dc, dr, du := ws.Schema.Dims()
	for i := 0; i < 4*ws.Schema.CellCount(); i++ {
		cb.Add(rng.Intn(de), rng.Intn(dc), rng.Intn(dr), rng.Intn(du), 1)
	}
	record := func(name string, r testing.BenchmarkResult) {
		rep.Micro = append(rep.Micro, MicroResult{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iters:       int64(r.N),
			TotalAllocs: int64(r.MemAllocs),
		})
	}

	dst := make(map[cube.Key]uint64)
	for _, shape := range []struct {
		name string
		f    cube.Filter
		g    cube.GroupBy
	}{
		{"agg-total", cube.Filter{}, cube.GroupBy{}},
		{"agg-group-country", cube.Filter{}, cube.GroupBy{Country: true}},
		{"agg-single-cell", cube.Filter{Elements: []int{1}, Countries: []int{2}, RoadTypes: []int{3}, UpdateTypes: []int{0}}, cube.GroupBy{}},
	} {
		f, g := shape.f, shape.g
		record(shape.name+"/scalar", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				clear(dst)
				cb.AggregateInto(f, g, dst)
			}
		}))
		ap := cube.CompileAgg(ws.Schema, f, g)
		record(shape.name+"/kernel", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				clear(dst)
				cb.AggregatePlanInto(ap, dst)
			}
		}))
	}

	// The cache-miss fetch path, eager vs pooled, with latency injection off
	// so the numbers isolate decode cost and allocation.
	prev := ws.Index.Store().ReadLatency()
	ws.Index.Store().SetReadLatency(0)
	defer ws.Index.Store().SetReadLatency(prev)
	p := temporal.DayPeriod(ws.Hi - 2)
	if !ws.Index.Has(p) {
		return fmt.Errorf("benchx: hotpath micro: no cube for %v", p)
	}
	record("miss-fetch/eager", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ws.Index.FetchViewCtx(ctx, p); err != nil {
				b.Fatal(err)
			}
		}
	}))
	record("miss-fetch/pooled", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pc, err := ws.Index.FetchPooledCtx(ctx, p)
			if err != nil {
				b.Fatal(err)
			}
			ws.Index.ReleasePooled(pc)
		}
	}))
	return nil
}

// summarizeHotpath extracts the acceptance numbers from the raw results.
func summarizeHotpath(rep *HotpathReport) HotpathSummary {
	var s HotpathSummary
	maxClients := 0
	for _, pt := range rep.Sweep {
		if pt.Clients > maxClients {
			maxClients = pt.Clients
		}
	}
	var base, full float64
	for _, pt := range rep.Sweep {
		if pt.Clients != maxClients {
			continue
		}
		switch pt.Mode {
		case "baseline":
			base = pt.QPS
		case "sharded+pool+vec":
			full = pt.QPS
		}
	}
	if base > 0 {
		s.ThroughputX16 = full / base
	}
	var eager, pooled MicroResult
	for _, m := range rep.Micro {
		switch m.Name {
		case "miss-fetch/eager":
			eager = m
			s.MissAllocsBaseline = m.AllocsPerOp
			s.MissBytesBaseline = m.BytesPerOp
		case "miss-fetch/pooled":
			pooled = m
			s.MissAllocsPooled = m.AllocsPerOp
			s.MissBytesPooled = m.BytesPerOp
		}
	}
	// Compare per-op allocation rates from the raw benchmark totals. If the
	// pooled path allocated literally nothing across its whole run, its rate
	// is below 1/iters, so the ratio reported is the measured lower bound
	// rather than infinity.
	if eager.Iters > 0 && pooled.Iters > 0 && eager.TotalAllocs > 0 {
		baseRate := float64(eager.TotalAllocs) / float64(eager.Iters)
		pooledTotal := pooled.TotalAllocs
		if pooledTotal == 0 {
			pooledTotal = 1
		}
		s.AllocReduction = baseRate * float64(pooled.Iters) / float64(pooledTotal)
	}
	return s
}

// WriteHotpathJSON writes the report as pretty-printed JSON.
func WriteHotpathJSON(path string, rep *HotpathReport) error {
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("benchx: marshal hotpath report: %w", err)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return fmt.Errorf("benchx: write hotpath report: %w", err)
	}
	return nil
}

// PrintHotpath renders the report.
func PrintHotpath(w io.Writer, rep *HotpathReport) {
	fmt.Fprintln(w, "Hot path: vectorized kernels, pooled decoding, sharded cache, coalesced reads")
	fmt.Fprintf(w, "  schema: %d cells/cube, %d-byte pages; %d years\n",
		rep.Config.CubeCells, rep.Config.PageBytes, rep.Config.Years)
	fmt.Fprintln(w, "  micro:")
	for _, m := range rep.Micro {
		fmt.Fprintf(w, "    %-24s %12.0f ns/op %8d allocs/op %12d B/op\n",
			m.Name, m.NsPerOp, m.AllocsPerOp, m.BytesPerOp)
	}
	fmt.Fprintln(w, "  sweep:")
	fmt.Fprintf(w, "    %-18s%8s%12s%10s%10s\n", "mode", "clients", "qps", "p50 ms", "p99 ms")
	for _, pt := range rep.Sweep {
		fmt.Fprintf(w, "    %-18s%8d%12.1f%10.3f%10.3f\n", pt.Mode, pt.Clients, pt.QPS, pt.P50Ms, pt.P99Ms)
	}
	fmt.Fprintf(w, "  summary: %.2fx throughput at %d clients; miss fetch %d -> %d allocs/op (%.0fx), %d -> %d B/op\n",
		rep.Summary.ThroughputX16, maxInts(rep.Config.Clients),
		rep.Summary.MissAllocsBaseline, rep.Summary.MissAllocsPooled, rep.Summary.AllocReduction,
		rep.Summary.MissBytesBaseline, rep.Summary.MissBytesPooled)
}

func maxInts(xs []int) int {
	out := 0
	for _, x := range xs {
		if x > out {
			out = x
		}
	}
	return out
}
