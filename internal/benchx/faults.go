package benchx

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"rased/internal/faultstore"
	"rased/internal/faultstore/harness"
	"rased/internal/tindex"
)

// ---------------------------------------------------------------------------
// Faults experiment: availability under injected storage faults, with the
// degraded-mode fallback on versus off. Each point is one chaos run from the
// same harness that backs the -race chaos tests (make chaos), so the
// published availability numbers and the CI contract come from one code path.

// FaultsPoint is one (fault rate, fallback mode) chaos run.
type FaultsPoint struct {
	// Rate is the per-page-access fault probability (split evenly between
	// transient read errors and read-side corruption); 0 when Spec is set.
	Rate float64 `json:"rate"`
	// Spec is the explicit fault spec when the sweep was overridden.
	Spec     string `json:"spec,omitempty"`
	Fallback bool   `json:"fallback"`

	Report harness.Report `json:"report"`

	// Availability is the fraction of queries answered exactly (the rest
	// failed typed; a wrong or untyped outcome fails the whole figure).
	Availability float64 `json:"availability"`
	// QPS is the faulted phase's aggregate throughput (retries and
	// fallback reconstruction both cost reads, so it drops with the rate).
	QPS float64 `json:"qps"`
}

// faultsQueriesFloor keeps availability estimates out of small-sample noise
// even when the caller's -queries is tuned for the latency figures.
const faultsQueriesFloor = 300

// FigFaults sweeps fault rates with the degraded-mode fallback on and off.
// rules, when non-nil, overrides the rate sweep with one explicit schedule
// (still run in both fallback modes) and spec labels the output. Any wrong
// answer or untyped failure aborts the figure with an error: the figure
// reports availability only under an intact correctness contract.
func FigFaults(ctx context.Context, rates []float64, rules []faultstore.Rule, spec string, queries int, seed int64) ([]FaultsPoint, error) {
	if queries < faultsQueriesFloor {
		queries = faultsQueriesFloor
	}
	type run struct {
		rate     float64
		spec     string
		rules    []faultstore.Rule
		ruleFunc func(*tindex.Index) []faultstore.Rule
	}
	var runs []run
	if rules != nil {
		runs = []run{{spec: spec, rules: rules}}
	} else {
		for _, r := range rates {
			runs = append(runs, run{rate: r, rules: harness.RateRules(r)})
		}
		// The dead-sector scenario replanning exists for: every monthly
		// rollup page persistently corrupt. Fallback on keeps every answer
		// exact; fallback off fails queries until quarantine reroutes them.
		runs = append(runs, run{spec: "deadmonths", ruleFunc: harness.DeadRollupRules})
	}
	var out []FaultsPoint
	for _, r := range runs {
		for _, fallback := range []bool{true, false} {
			dir, err := os.MkdirTemp("", "rased-faults")
			if err != nil {
				return nil, err
			}
			opts := harness.DefaultEngineOptions()
			opts.DegradedFallback = fallback
			rep, err := harness.Run(ctx, dir, harness.Config{
				Seed:     seed,
				Queries:  queries,
				Rules:    r.rules,
				RuleFunc: r.ruleFunc,
				Opts:     &opts,
			})
			os.RemoveAll(dir)
			if err != nil {
				return nil, fmt.Errorf("benchx: faults run (rate %g, fallback %v): %w", r.rate, fallback, err)
			}
			if !rep.Clean() {
				return nil, fmt.Errorf("benchx: faults run (rate %g, fallback %v) violated the degraded-mode contract: %s",
					r.rate, fallback, rep.FirstViolation)
			}
			pt := FaultsPoint{
				Rate:         r.rate,
				Spec:         r.spec,
				Fallback:     fallback,
				Report:       *rep,
				Availability: float64(rep.Exact) / float64(rep.Queries),
			}
			if s := rep.Elapsed.Seconds(); s > 0 {
				pt.QPS = float64(rep.Queries) / s
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// WriteFaultsJSON writes the figure as pretty-printed JSON.
func WriteFaultsJSON(path string, points []FaultsPoint) error {
	raw, err := json.MarshalIndent(points, "", "  ")
	if err != nil {
		return fmt.Errorf("benchx: marshal faults figure: %w", err)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return fmt.Errorf("benchx: write faults figure: %w", err)
	}
	return nil
}

// PrintFigFaults renders the sweep: one row per (rate, fallback) run.
func PrintFigFaults(w io.Writer, points []FaultsPoint) {
	fmt.Fprintln(w, "Faults: availability under injected storage faults (chaos harness)")
	fmt.Fprintf(w, "%-12s%-10s%10s%10s%10s%10s%12s%14s%10s\n",
		"rate", "fallback", "queries", "exact", "replanned", "typed", "injected", "availability", "qps")
	for _, p := range points {
		label := fmt.Sprintf("%g", p.Rate)
		if p.Spec != "" {
			label = p.Spec
			if len(label) > 11 {
				label = label[:11]
			}
		}
		fmt.Fprintf(w, "%-12s%-10v%10d%10d%10d%10d%12d%13.1f%%%10.0f\n",
			label, p.Fallback, p.Report.Queries, p.Report.Exact, p.Report.Replanned,
			p.Report.TypedFail, p.Report.Injected, 100*p.Availability, p.QPS)
	}
	fmt.Fprintln(w, "  (every non-exact outcome is a typed failure; wrong answers or untyped errors abort the figure)")
}
