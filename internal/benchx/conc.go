package benchx

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"time"

	"rased/internal/core"
	"rased/internal/exec"
)

// ---------------------------------------------------------------------------
// Concurrency experiment: throughput and tail latency under concurrent
// dashboard clients, for the serial query path versus the exec subsystem's
// parallel cube fetches, with and without cross-query singleflight.

// ConcPoint is one (mode, client count) measurement.
type ConcPoint struct {
	Mode     string
	Clients  int
	QPS      float64
	P50, P99 time.Duration
	// SharedFetches is the run's total cube fetches answered by another
	// query's concurrent identical read (0 outside singleflight mode).
	SharedFetches int64
}

// concMode is one engine configuration of the sweep.
type concMode struct {
	name         string
	workers      int
	singleflight bool
}

// concSpanDays is the query window span. Three recency-skewed months keeps
// plans at a realistic handful of cubes while concurrent clients overlap on
// the hot recent periods — the case singleflight exists for.
const concSpanDays = 90

// concReadLatency is injected per page read for this experiment, overriding
// the workspace default (200µs, tuned for the single-query figures). The
// exec subsystem targets the disk-bound regime — a cold production store at
// millisecond random reads — and on small CI machines the lighter default
// leaves every mode CPU-bound, measuring the scheduler instead of the
// fetch path.
const concReadLatency = 2 * time.Millisecond

// FigConc sweeps concurrent client counts over three engine configurations:
// serial fetches (the pre-exec query path), parallel fetches sharing a
// bounded worker pool, and parallel fetches plus cross-query singleflight.
// Every client runs perClient queries from its own deterministic stream, so
// all modes see identical workloads. The cache is disabled: the experiment
// measures the disk path the exec subsystem parallelizes. Cancelling ctx
// aborts the sweep between queries (and mid-read via the injected latency).
func FigConc(ctx context.Context, ws *Workspace, clientCounts []int, perClient, workers int, seed int64) ([]ConcPoint, error) {
	modes := []concMode{
		{name: "serial", workers: 0},
		{name: "parallel", workers: workers},
		{name: "parallel+sf", workers: workers, singleflight: true},
	}
	prev := ws.Index.Store().ReadLatency()
	ws.Index.Store().SetReadLatency(concReadLatency)
	defer ws.Index.Store().SetReadLatency(prev)
	var out []ConcPoint
	for _, m := range modes {
		eng, err := ws.newEngine(core.Options{
			LevelOptimization: true,
			FetchWorkers:      m.workers,
			Singleflight:      m.singleflight,
		})
		if err != nil {
			return nil, err
		}
		for _, clients := range clientCounts {
			pt, err := runConcClients(ctx, ws, eng, m.name, clients, perClient, seed)
			if err != nil {
				return nil, err
			}
			out = append(out, *pt)
		}
	}
	return out, nil
}

// runConcClients drives `clients` goroutines of perClient queries each
// against one engine and reports aggregate throughput and latency quantiles.
func runConcClients(ctx context.Context, ws *Workspace, eng *core.Engine, mode string, clients, perClient int, seed int64) (*ConcPoint, error) {
	lats := make([][]time.Duration, clients)
	shared := make([]int64, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(c)*7919))
			lats[c] = make([]time.Duration, 0, perClient)
			for i := 0; i < perClient; i++ {
				lo, hi := ws.recentWindow(rng, concSpanDays)
				q := ws.singleCellQuery(rng, lo, hi)
				t0 := time.Now()
				res, err := eng.AnalyzeContext(ctx, q)
				if err != nil {
					errs[c] = err
					return
				}
				lats[c] = append(lats[c], time.Since(t0))
				shared[c] += int64(res.Stats.SharedFetches)
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	var all []time.Duration
	var sharedTotal int64
	for c := 0; c < clients; c++ {
		if errs[c] != nil {
			return nil, fmt.Errorf("benchx: conc client %d: %w", c, errs[c])
		}
		all = append(all, lats[c]...)
		sharedTotal += shared[c]
	}
	return &ConcPoint{
		Mode:          mode,
		Clients:       clients,
		QPS:           float64(len(all)) / wall.Seconds(),
		P50:           percentileDur(all, 0.5),
		P99:           percentileDur(all, 0.99),
		SharedFetches: sharedTotal,
	}, nil
}

// percentileDur returns the q-quantile of the sample (nearest-rank).
func percentileDur(durs []time.Duration, q float64) time.Duration {
	if len(durs) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(durs))
	copy(sorted, durs)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// PrintFigConc renders the sweep: one row per client count, QPS and p99 per
// mode, plus the parallel modes' speedup over serial.
func PrintFigConc(w io.Writer, points []ConcPoint) {
	fmt.Fprintln(w, "Concurrency: throughput and tail latency vs dashboard clients")
	byKey := map[string]map[int]ConcPoint{}
	var clientSet []int
	seen := map[int]bool{}
	for _, p := range points {
		if byKey[p.Mode] == nil {
			byKey[p.Mode] = map[int]ConcPoint{}
		}
		byKey[p.Mode][p.Clients] = p
		if !seen[p.Clients] {
			seen[p.Clients] = true
			clientSet = append(clientSet, p.Clients)
		}
	}
	sort.Ints(clientSet)
	modes := []string{"serial", "parallel", "parallel+sf"}
	fmt.Fprintf(w, "%-8s", "clients")
	for _, m := range modes {
		fmt.Fprintf(w, "%16s%10s", m+" qps", "p99 ms")
	}
	fmt.Fprintf(w, "%10s%10s\n", "speedup", "shared")
	for _, c := range clientSet {
		fmt.Fprintf(w, "%-8d", c)
		for _, m := range modes {
			p := byKey[m][c]
			fmt.Fprintf(w, "%16.1f%10.3f", p.QPS, float64(p.P99)/1e6)
		}
		speedup := 0.0
		if s := byKey["serial"][c].QPS; s > 0 {
			speedup = byKey["parallel+sf"][c].QPS / s
		}
		fmt.Fprintf(w, "%9.2fx%10d\n", speedup, byKey["parallel+sf"][c].SharedFetches)
	}
}

// ---------------------------------------------------------------------------
// Overload: admission control under more clients than the engine admits.

// OverloadResult reports the overload run: an engine bounded to MaxInflight
// concurrent queries (plus a short wait queue) facing many more clients.
// Excess load is shed with exec.ErrRejected (the server's 503) instead of
// queueing without bound, which keeps the accepted queries' tail latency
// close to the uncontended engine's.
type OverloadResult struct {
	Workers     int
	MaxInflight int
	MaxQueue    int
	Clients     int

	Attempted int64
	Completed int64
	Rejected  int64

	UncontendedP99 time.Duration // p99 with exactly MaxInflight clients
	AcceptedP99    time.Duration // p99 of completed queries under overload
}

// OverloadConc measures admission control: the same engine configuration is
// run uncontended (clients == MaxInflight, nothing queues) and overloaded
// (clients >> MaxInflight), comparing the accepted queries' p99.
func OverloadConc(ctx context.Context, ws *Workspace, workers, maxInflight, maxQueue, clients, perClient int, seed int64) (*OverloadResult, error) {
	eng, err := ws.newEngine(core.Options{
		LevelOptimization: true,
		FetchWorkers:      workers,
		Singleflight:      true,
		MaxInflight:       maxInflight,
		MaxQueue:          maxQueue,
	})
	if err != nil {
		return nil, err
	}
	prev := ws.Index.Store().ReadLatency()
	ws.Index.Store().SetReadLatency(concReadLatency)
	defer ws.Index.Store().SetReadLatency(prev)
	res := &OverloadResult{Workers: workers, MaxInflight: maxInflight, MaxQueue: maxQueue, Clients: clients}

	uncontended, err := runOverloadClients(ctx, ws, eng, maxInflight, perClient, seed)
	if err != nil {
		return nil, err
	}
	res.UncontendedP99 = percentileDur(uncontended.lats, 0.99)

	over, err := runOverloadClients(ctx, ws, eng, clients, perClient, seed)
	if err != nil {
		return nil, err
	}
	res.Attempted = over.attempted
	res.Completed = int64(len(over.lats))
	res.Rejected = over.rejected
	res.AcceptedP99 = percentileDur(over.lats, 0.99)
	return res, nil
}

// overloadRun aggregates one client storm.
type overloadRun struct {
	attempted, rejected int64
	lats                []time.Duration
}

func runOverloadClients(ctx context.Context, ws *Workspace, eng *core.Engine, clients, perClient int, seed int64) (*overloadRun, error) {
	lats := make([][]time.Duration, clients)
	rejected := make([]int64, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(c)*104729))
			for i := 0; i < perClient; i++ {
				lo, hi := ws.recentWindow(rng, concSpanDays)
				q := ws.singleCellQuery(rng, lo, hi)
				t0 := time.Now()
				_, err := eng.AnalyzeContext(ctx, q)
				switch {
				case errors.Is(err, exec.ErrRejected):
					rejected[c]++
				case err != nil:
					errs[c] = err
					return
				default:
					lats[c] = append(lats[c], time.Since(t0))
				}
			}
		}(c)
	}
	wg.Wait()
	run := &overloadRun{}
	for c := 0; c < clients; c++ {
		if errs[c] != nil {
			return nil, fmt.Errorf("benchx: overload client %d: %w", c, errs[c])
		}
		run.attempted += int64(perClient)
		run.rejected += rejected[c]
		run.lats = append(run.lats, lats[c]...)
	}
	return run, nil
}

// PrintOverload renders the overload result.
func PrintOverload(w io.Writer, r *OverloadResult) {
	fmt.Fprintln(w, "Overload: admission control (rejected queries get a retryable 503 at the server)")
	fmt.Fprintf(w, "  engine: %d workers, max-inflight %d, queue %d; storm: %d clients\n",
		r.Workers, r.MaxInflight, r.MaxQueue, r.Clients)
	fmt.Fprintf(w, "  attempted %d, completed %d, rejected %d (%.1f%%)\n",
		r.Attempted, r.Completed, r.Rejected, 100*float64(r.Rejected)/float64(r.Attempted))
	fmt.Fprintf(w, "  p99 uncontended %.3f ms, p99 accepted under overload %.3f ms (%.2fx)\n",
		float64(r.UncontendedP99)/1e6, float64(r.AcceptedP99)/1e6,
		float64(r.AcceptedP99)/float64(r.UncontendedP99))
}
