package benchx

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"time"

	"rased/internal/core"
	"rased/internal/crawl"
	"rased/internal/cube"
	"rased/internal/geo"
	"rased/internal/osmgen"
	"rased/internal/temporal"
	"rased/internal/tindex"
)

// ---------------------------------------------------------------------------
// Footprint experiment: what the compressed cold tier buys at scale. For each
// load scale the same deployment is measured twice — dense v1 pages (the hot
// tier) and then fully compacted into v2 extents — so the pairs isolate the
// encoding: index bytes per ingested update, resident cache entries a 1 GiB
// byte budget holds, and query latency through each tier. The figure is the
// evidence for the storage claim: the compressed tier must shrink bytes per
// update several-fold while keeping p99 within a small factor of dense.

// FootprintPoint is one (scale, tier-pair) measurement.
type FootprintPoint struct {
	Scale        int     `json:"scale"`       // updates-per-day multiplier
	Days         int     `json:"days"`        // covered daily periods
	Periods      int     `json:"periods"`     // all periods across levels
	Updates      int64   `json:"updates"`     // ingested update records
	DenseBytes   int64   `json:"dense_bytes"` // hot-tier file bytes before compaction
	ColdBytes    int64   `json:"cold_bytes"`  // cold-tier file bytes after compaction
	DensePerUpd  float64 `json:"dense_bytes_per_update"`
	ColdPerUpd   float64 `json:"cold_bytes_per_update"`
	Reduction    float64 `json:"reduction"` // dense_bytes_per_update / cold_bytes_per_update
	DensePerGB   float64 `json:"dense_cache_entries_per_gb"`
	ColdPerGB    float64 `json:"cold_cache_entries_per_gb"`
	DenseP50Usec float64 `json:"dense_p50_usec"`
	DenseP99Usec float64 `json:"dense_p99_usec"`
	ColdP50Usec  float64 `json:"cold_p50_usec"`
	ColdP99Usec  float64 `json:"cold_p99_usec"`
	P99Ratio     float64 `json:"p99_ratio"` // cold / dense
}

// FootprintReport is the figure's output.
type FootprintReport struct {
	Quick   bool             `json:"quick"`
	Queries int              `json:"queries_per_tier"`
	Points  []FootprintPoint `json:"points"`
}

// footprintParams sizes the run.
type footprintParams struct {
	days    int
	baseUPD int // updates per day at scale 1
	queries int
	scales  []int
}

func footprintDefaults(quick bool) footprintParams {
	if quick {
		return footprintParams{days: 21, baseUPD: 100, queries: 100, scales: []int{1, 10}}
	}
	return footprintParams{days: 90, baseUPD: 150, queries: 400, scales: []int{1, 10}}
}

// FigFootprint builds one deployment per scale, measures the dense (hot) tier,
// compacts every period into compressed extents, and measures again.
func FigFootprint(ctx context.Context, quick bool, seed int64) (*FootprintReport, error) {
	p := footprintDefaults(quick)
	rep := &FootprintReport{Quick: quick, Queries: p.queries}
	for _, scale := range p.scales {
		pt, err := footprintAtScale(ctx, p, scale, seed)
		if err != nil {
			return nil, fmt.Errorf("benchx: footprint at scale %d: %w", scale, err)
		}
		rep.Points = append(rep.Points, *pt)
	}
	return rep, nil
}

func footprintAtScale(ctx context.Context, p footprintParams, scale int, seed int64) (*FootprintPoint, error) {
	dir, err := os.MkdirTemp("", "rased-footprint")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// A wide schema is the realistic regime for the compression claim: most
	// (country, road, type) cells of any single day are empty, which is
	// exactly what the dense layout cannot exploit.
	schema := cube.ScaledSchema(60, 25)
	ix, err := tindex.Create(dir, schema, temporal.NumLevels)
	if err != nil {
		return nil, err
	}
	defer ix.Close()

	gcfg := osmgen.DefaultConfig()
	gcfg.Seed = seed + int64(scale)
	gcfg.UpdatesPerDay = p.baseUPD * scale
	gen := osmgen.New(gcfg)
	ing := core.NewIngestor(ix)
	csIdx := crawl.ChangesetIndex{}
	reg := geo.Default()
	var updates int64
	for i := 0; i < p.days; i++ {
		art := gen.NextDay()
		csIdx.Add(art.Changesets)
		recs, _, err := crawl.Daily(art.Change, csIdx, reg)
		if err != nil {
			return nil, err
		}
		kept := recs[:0]
		for _, r := range recs {
			if int(r.Country) < len(schema.Countries) && int(r.RoadType) < len(schema.RoadTypes) {
				kept = append(kept, r)
			}
		}
		if err := ing.AppendDay(art.Day, kept); err != nil {
			return nil, err
		}
		updates += int64(len(kept))
	}
	if err := ix.Sync(); err != nil {
		return nil, err
	}

	var ps []temporal.Period
	for lvl := temporal.Daily; lvl <= temporal.Yearly; lvl++ {
		ps = append(ps, ix.Periods(lvl)...)
	}
	pt := &FootprintPoint{Scale: scale, Days: p.days, Periods: len(ps), Updates: updates}

	// Dense tier: file footprint, cache density, query latency.
	pt.DenseBytes = ix.Tiers().HotFileBytes
	if pt.DensePerGB, err = cacheEntriesPerGB(ctx, ix); err != nil {
		return nil, err
	}
	if pt.DenseP50Usec, pt.DenseP99Usec, err = footprintLatency(ctx, ix, p, seed); err != nil {
		return nil, err
	}

	// Compact everything and re-measure through the cold tier.
	st, err := ix.CompactPeriods(ctx, ps)
	if err != nil {
		return nil, err
	}
	if st.Compacted != len(ps) {
		return nil, fmt.Errorf("compacted %d of %d periods (%+v)", st.Compacted, len(ps), st)
	}
	pt.ColdBytes = ix.Tiers().ColdFileBytes
	if pt.ColdPerGB, err = cacheEntriesPerGB(ctx, ix); err != nil {
		return nil, err
	}
	if pt.ColdP50Usec, pt.ColdP99Usec, err = footprintLatency(ctx, ix, p, seed); err != nil {
		return nil, err
	}

	if updates > 0 {
		pt.DensePerUpd = float64(pt.DenseBytes) / float64(updates)
		pt.ColdPerUpd = float64(pt.ColdBytes) / float64(updates)
	}
	if pt.ColdPerUpd > 0 {
		pt.Reduction = pt.DensePerUpd / pt.ColdPerUpd
	}
	if pt.DenseP99Usec > 0 {
		pt.P99Ratio = pt.ColdP99Usec / pt.DenseP99Usec
	}
	return pt, nil
}

// cacheEntriesPerGB reads every daily period as the demand cache would (a
// cheap view: lazy over dense payloads, compact for compressed ones) and
// returns how many average-sized entries a 1 GiB byte budget holds.
func cacheEntriesPerGB(ctx context.Context, ix *tindex.Index) (float64, error) {
	days := ix.Periods(temporal.Daily)
	var total int64
	for _, d := range days {
		v, err := ix.FetchViewCtx(ctx, d)
		if err != nil {
			return 0, err
		}
		total += int64(cube.ReaderBytes(v))
	}
	if total == 0 {
		return 0, nil
	}
	avg := float64(total) / float64(len(days))
	return float64(1<<30) / avg, nil
}

// footprintLatency runs a fixed single-client query mix with caching off —
// every query pays the storage path of whichever tier currently holds the
// data — and returns p50/p99 in microseconds.
func footprintLatency(ctx context.Context, ix *tindex.Index, p footprintParams, seed int64) (p50, p99 float64, err error) {
	opts := core.DefaultOptions()
	opts.CacheSlots = 0 // no residency: measure the fetch+decode path
	opts.CoalesceReads = true
	eng, err := core.NewEngine(ix, opts)
	if err != nil {
		return 0, 0, err
	}
	lo, hi, _ := ix.Coverage()
	rng := rand.New(rand.NewSource(seed * 31))
	lat := make([]float64, 0, p.queries)
	for i := 0; i < p.queries; i++ {
		span := temporal.Day(1 + rng.Intn(28))
		qhi := hi - temporal.Day(rng.Intn(int(hi-lo)/2+1))
		q := core.Query{From: qhi - span, To: qhi, GroupBy: core.GroupBy{Country: true}}
		start := time.Now()
		if _, err := eng.AnalyzeContext(ctx, q); err != nil {
			return 0, 0, err
		}
		lat = append(lat, float64(time.Since(start).Microseconds()))
	}
	sort.Float64s(lat)
	q := func(f float64) float64 { return lat[int(f*float64(len(lat)-1))] }
	return q(0.50), q(0.99), nil
}

// WriteFootprintJSON writes the figure as pretty-printed JSON.
func WriteFootprintJSON(path string, rep *FootprintReport) error {
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("benchx: marshal footprint figure: %w", err)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return fmt.Errorf("benchx: write footprint figure: %w", err)
	}
	return nil
}

// PrintFigFootprint renders the run.
func PrintFigFootprint(w io.Writer, rep *FootprintReport) {
	fmt.Fprintln(w, "Footprint: compressed cold tier vs dense pages")
	for _, pt := range rep.Points {
		fmt.Fprintf(w, "  scale %dx: %d updates over %d days (%d periods)\n",
			pt.Scale, pt.Updates, pt.Days, pt.Periods)
		fmt.Fprintf(w, "    index bytes/update: %.1f dense -> %.1f compressed (%.1fx reduction)\n",
			pt.DensePerUpd, pt.ColdPerUpd, pt.Reduction)
		fmt.Fprintf(w, "    cache entries per GiB: %.0f dense -> %.0f compressed\n",
			pt.DensePerGB, pt.ColdPerGB)
		fmt.Fprintf(w, "    query latency: p50 %.0fus/p99 %.0fus dense vs p50 %.0fus/p99 %.0fus compressed (p99 ratio %.2f)\n",
			pt.DenseP50Usec, pt.DenseP99Usec, pt.ColdP50Usec, pt.ColdP99Usec, pt.P99Ratio)
	}
}
