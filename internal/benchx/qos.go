package benchx

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"rased/internal/core"
	"rased/internal/exec"
	"rased/internal/faultstore/harness"
	wl "rased/internal/workload"
)

// ---------------------------------------------------------------------------
// QoS experiment: multi-tenant quality of service under the deterministic
// dashboard-traffic model (internal/workload). Four measurements share one
// index and one trace:
//
//  1. Interactive latency uncontended — the interactive slice of the trace
//     replayed alone.
//  2. The full trace under priority admission — interactive tiles compete
//     with API pollers and bulk exports for the same execution slots.
//  3. The same full trace under plain FIFO admission — the ablation that
//     shows what class priority buys.
//  4. A composed chaos run — the same QoS stack under overload AND a 1%
//     fault schedule AND live epoch publication at once (harness.RunComposed).
//
// The figure hard-gates its own output: interactive p99 under contention at
// most double uncontended, no tenant starved, the result cache absorbing
// >30% of the replay, and the composed run upholding both chaos oracles.
// A violated gate fails the figure with an error, exactly as FigFaults
// fails on a contract violation.

// QoSGateP99Ratio is the contended/uncontended interactive p99 ceiling.
const QoSGateP99Ratio = 2.0

// QoSGateHitRate is the minimum result-cache hit share on the full replay.
const QoSGateHitRate = 0.30

// QoSClassStat is one traffic class's latency profile in a replay.
type QoSClassStat struct {
	Events    int           `json:"events"`
	Completed int           `json:"completed"`
	P50       time.Duration `json:"p50_ns"`
	P99       time.Duration `json:"p99_ns"`
}

// QoSGates records the pass/fail state of each hard gate.
type QoSGates struct {
	P99RatioLE2   bool `json:"interactive_p99_ratio_le_2"`
	NoStarvation  bool `json:"every_tenant_completed"`
	CacheHitGT30  bool `json:"cache_hit_rate_gt_30pct"`
	ComposedClean bool `json:"composed_zero_wrong_zero_untyped"`
}

// Pass reports whether every gate held.
func (g QoSGates) Pass() bool {
	return g.P99RatioLE2 && g.NoStarvation && g.CacheHitGT30 && g.ComposedClean
}

// QoSReport is the full figure, written as BENCH_qos.json.
type QoSReport struct {
	Sessions int `json:"sessions"`
	Events   int `json:"events"`
	Tenants  int `json:"tenants"`

	// UncontendedP99 is interactive p99 with no competing classes;
	// ContendedP99 the same queries' p99 while API and bulk traffic shares
	// the execution tier under priority admission; FIFOP99 the ablation
	// with arrival-order admission.
	UncontendedP99 time.Duration `json:"uncontended_interactive_p99_ns"`
	ContendedP99   time.Duration `json:"contended_interactive_p99_ns"`
	FIFOP99        time.Duration `json:"fifo_interactive_p99_ns"`
	P99Ratio       float64       `json:"p99_ratio"`
	FIFORatio      float64       `json:"fifo_p99_ratio"`

	// ByClass is the contended (priority) replay broken down per class.
	ByClass map[string]QoSClassStat `json:"by_class"`

	// StarvedTenants counts tenants that issued at least one query and
	// completed none in the contended replay (gate: zero).
	StarvedTenants int `json:"starved_tenants"`
	// CacheHitRate is result-cache hits over completed queries in the
	// contended replay.
	CacheHitRate float64 `json:"cache_hit_rate"`
	Shed         int     `json:"shed"`

	Composed harness.ComposedReport `json:"composed"`

	Gates QoSGates `json:"gates"`
}

// qosEngineOptions is the serving configuration all replay phases share:
// enough slots that the tier is busy but not collapsing, priority admission
// toggled per phase, the result cache on with a TTL far beyond the replay.
func qosEngineOptions(priority bool) core.Options {
	o := harness.DefaultEngineOptions()
	o.MaxInflight = 6
	o.MaxQueue = 256
	o.QoSPriority = priority
	o.ResultCacheTTL = time.Minute
	o.ResultCacheSlots = 8192
	return o
}

// replayStats is what one trace replay yields.
type replayStats struct {
	latsByClass [exec.NumClasses][]time.Duration
	events      [exec.NumClasses]int
	completed   [exec.NumClasses]int
	hits        int
	shed        int
	issuedBy    map[string]int
	completedBy map[string]int
}

// replayTrace replays events over eng from `workers` closed-loop goroutines
// (worker w takes events w, w+workers, ...), recording wall-clock latency —
// admission wait included; the queue is the thing being measured — per
// class, result-cache hits, shed queries, and per-tenant completion.
func replayTrace(ctx context.Context, eng *core.Engine, events []wl.Event, workers int) (*replayStats, error) {
	st := &replayStats{issuedBy: map[string]int{}, completedBy: map[string]int{}}
	var mu sync.Mutex
	var wg sync.WaitGroup
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(events); i += workers {
				ev := events[i]
				qctx := exec.WithClass(exec.WithTenant(ctx, ev.Tenant), ev.Class)
				start := time.Now()
				res, err := eng.AnalyzeContext(qctx, ev.Query)
				lat := time.Since(start)
				mu.Lock()
				st.events[ev.Class]++
				st.issuedBy[ev.Tenant]++
				switch {
				case err == nil:
					st.completed[ev.Class]++
					st.completedBy[ev.Tenant]++
					st.latsByClass[ev.Class] = append(st.latsByClass[ev.Class], lat)
					if res.Stats.ResultCacheHit {
						st.hits++
					}
				case errors.Is(err, exec.ErrRejected), errors.Is(err, exec.ErrThrottled):
					st.shed++
				default:
					if firstErr == nil {
						firstErr = fmt.Errorf("benchx: qos replay event %d: %w", i, err)
					}
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return st, nil
}

// FigQoS runs the QoS figure. quick shrinks the trace and the composed run
// for the CI smoke pass; the gates apply in both modes.
func FigQoS(ctx context.Context, quick bool, seed int64) (*QoSReport, error) {
	days, sessions := 120, 200
	composedSessions := 120
	if quick {
		days, sessions = 60, 80
		composedSessions = 60
	}
	dir, err := os.MkdirTemp("", "rased-qos")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	ix, _, err := harness.Build(dir, days, seed)
	if err != nil {
		return nil, err
	}
	defer ix.Close()
	// The production disk model: without injected per-page latency every
	// query completes in microseconds and the admission tier is never
	// contended — the ratios would measure scheduler noise, not policy.
	ix.Store().SetReadLatency(200 * time.Microsecond)
	lo, hi, ok := ix.Coverage()
	if !ok {
		return nil, fmt.Errorf("benchx: qos index empty after build")
	}

	wcfg := wl.Defaults(lo, hi, harness.Schema().Countries[:4])
	wcfg.Seed = seed
	wcfg.Sessions = sessions
	tr, err := wl.Generate(wcfg)
	if err != nil {
		return nil, err
	}
	var interactive []wl.Event
	tenants := map[string]bool{}
	for _, ev := range tr.Events {
		if ev.Class == exec.ClassInteractive {
			interactive = append(interactive, ev)
		}
		tenants[ev.Tenant] = true
	}
	rep := &QoSReport{Sessions: sessions, Events: len(tr.Events), Tenants: len(tenants)}

	// Warmup: one full replay on a throwaway engine, so the OS page cache is
	// equally warm for every measured phase — without it the first phase
	// pays all the cold reads and the ratios compare storage tiers, not
	// admission policies.
	const workers = 12
	engW, err := core.NewEngine(ix, qosEngineOptions(true))
	if err != nil {
		return nil, err
	}
	if _, err := replayTrace(ctx, engW, tr.Events, workers); err != nil {
		return nil, err
	}

	// Phase 1: interactive alone. Same worker count as the contended phases
	// so self-queueing is identical and the measured delta is purely the
	// presence of the other classes.
	engU, err := core.NewEngine(ix, qosEngineOptions(true))
	if err != nil {
		return nil, err
	}
	stU, err := replayTrace(ctx, engU, interactive, workers)
	if err != nil {
		return nil, err
	}
	rep.UncontendedP99 = percentileDur(stU.latsByClass[exec.ClassInteractive], 0.99)

	// Phase 2: the full trace under priority admission.
	engP, err := core.NewEngine(ix, qosEngineOptions(true))
	if err != nil {
		return nil, err
	}
	stP, err := replayTrace(ctx, engP, tr.Events, workers)
	if err != nil {
		return nil, err
	}
	rep.ContendedP99 = percentileDur(stP.latsByClass[exec.ClassInteractive], 0.99)

	// Phase 3: the ablation — same load, FIFO admission.
	engF, err := core.NewEngine(ix, qosEngineOptions(false))
	if err != nil {
		return nil, err
	}
	stF, err := replayTrace(ctx, engF, tr.Events, workers)
	if err != nil {
		return nil, err
	}
	rep.FIFOP99 = percentileDur(stF.latsByClass[exec.ClassInteractive], 0.99)

	if rep.UncontendedP99 > 0 {
		rep.P99Ratio = float64(rep.ContendedP99) / float64(rep.UncontendedP99)
		rep.FIFORatio = float64(rep.FIFOP99) / float64(rep.UncontendedP99)
	}
	rep.ByClass = map[string]QoSClassStat{}
	var completedTotal int
	for cl := exec.ClassInteractive; cl < exec.NumClasses; cl++ {
		lats := stP.latsByClass[cl]
		rep.ByClass[cl.String()] = QoSClassStat{
			Events:    stP.events[cl],
			Completed: stP.completed[cl],
			P50:       percentileDur(lats, 0.50),
			P99:       percentileDur(lats, 0.99),
		}
		completedTotal += stP.completed[cl]
	}
	for tnt, issued := range stP.issuedBy {
		if issued > 0 && stP.completedBy[tnt] == 0 {
			rep.StarvedTenants++
		}
	}
	if completedTotal > 0 {
		rep.CacheHitRate = float64(stP.hits) / float64(completedTotal)
	}
	rep.Shed = stP.shed

	// Phase 4: the composed run — overload, 1% faults, and live epoch
	// publication at once, on its own deployment (it mutates coverage).
	cdir, err := os.MkdirTemp("", "rased-qos-composed")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(cdir)
	copts := harness.DefaultQoSEngineOptions()
	copts.MaxInflight = 2
	copts.MaxQueue = 4
	copts.TenantRate = 50
	copts.TenantBurst = 10
	crep, err := harness.RunComposed(ctx, cdir, harness.ComposedConfig{
		Seed:     seed,
		Days:     days,
		Workers:  24,
		Sessions: composedSessions,
		Rules:    harness.RateRules(0.01),
		Opts:     &copts,
	})
	if err != nil {
		return nil, err
	}
	rep.Composed = *crep

	rep.Gates = QoSGates{
		P99RatioLE2:   rep.P99Ratio > 0 && rep.P99Ratio <= QoSGateP99Ratio,
		NoStarvation:  rep.StarvedTenants == 0,
		CacheHitGT30:  rep.CacheHitRate > QoSGateHitRate,
		ComposedClean: crep.Clean(),
	}
	if !rep.Gates.Pass() {
		return rep, fmt.Errorf("benchx: qos gates failed: %+v (ratio %.2f, hit rate %.2f, starved %d, composed %d wrong / %d untyped)",
			rep.Gates, rep.P99Ratio, rep.CacheHitRate, rep.StarvedTenants, crep.Wrong, crep.Untyped)
	}
	return rep, nil
}

// WriteQoSJSON writes the figure as pretty-printed JSON.
func WriteQoSJSON(path string, rep *QoSReport) error {
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("benchx: marshal qos figure: %w", err)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return fmt.Errorf("benchx: write qos figure: %w", err)
	}
	return nil
}

// PrintFigQoS renders the figure.
func PrintFigQoS(w io.Writer, rep *QoSReport) {
	fmt.Fprintln(w, "QoS: multi-tenant serving under realistic dashboard traffic")
	fmt.Fprintf(w, "  trace: %d sessions, %d events, %d tenants\n", rep.Sessions, rep.Events, rep.Tenants)
	fmt.Fprintf(w, "  interactive p99: %.3f ms alone, %.3f ms contended (priority, %.2fx), %.3f ms contended (FIFO, %.2fx)\n",
		float64(rep.UncontendedP99)/1e6, float64(rep.ContendedP99)/1e6, rep.P99Ratio,
		float64(rep.FIFOP99)/1e6, rep.FIFORatio)
	fmt.Fprintf(w, "  %-14s%10s%12s%12s%12s\n", "class", "events", "completed", "p50 ms", "p99 ms")
	classes := make([]string, 0, len(rep.ByClass))
	for name := range rep.ByClass {
		classes = append(classes, name)
	}
	sort.Strings(classes)
	for _, name := range classes {
		s := rep.ByClass[name]
		fmt.Fprintf(w, "  %-14s%10d%12d%12.3f%12.3f\n",
			name, s.Events, s.Completed, float64(s.P50)/1e6, float64(s.P99)/1e6)
	}
	fmt.Fprintf(w, "  cache hit rate %.1f%%, shed %d, starved tenants %d\n",
		100*rep.CacheHitRate, rep.Shed, rep.StarvedTenants)
	c := rep.Composed
	fmt.Fprintf(w, "  composed (overload + 1%% faults + live folds): %d queries, %d exact, %d live-ok, %d shed, %d typed, %d wrong, %d untyped, %d epochs\n",
		c.Queries, c.Exact, c.LiveOK, c.Shed, c.TypedFail, c.Wrong, c.Untyped, c.Epochs)
	fmt.Fprintf(w, "  gates: p99<=2x %v, no starvation %v, cache>30%% %v, composed clean %v\n",
		rep.Gates.P99RatioLE2, rep.Gates.NoStarvation, rep.Gates.CacheHitGT30, rep.Gates.ComposedClean)
}
