package benchx

import (
	"fmt"
	"io"
	"time"

	"rased/internal/core"
	"rased/internal/obs"
)

// Evidence corroborates one figure measurement with the engine's own obs
// counters: over the run's queries, how often the cache answered, how many
// index pages hit disk, and where the latency distribution actually sat.
// Printed alongside each figure so averaged numbers come with receipts.
type Evidence struct {
	Label         string
	Queries       int64         // queries the engine counted during the run
	HitRate       float64       // cache hit fraction; < 0 when the variant has no cache
	PagesPerQuery float64       // index page reads per query
	P50, P99      time.Duration // from the engine's latency histogram
}

// evidenceProbe captures the engine's counters at the start of a measurement
// run so finish can report the run's deltas.
type evidenceProbe struct {
	eng          *core.Engine
	lat          obs.HistogramSnapshot
	hits, misses int64
	reads        int64
}

func startEvidence(eng *core.Engine) *evidenceProbe {
	p := &evidenceProbe{eng: eng, lat: eng.Metrics().QueryLatency.Snapshot()}
	if c := eng.Cache(); c != nil {
		st := c.Stats()
		p.hits, p.misses = st.Hits, st.Misses
	}
	p.reads = eng.Index().Store().Stats().Reads
	return p
}

func (p *evidenceProbe) finish(label string) Evidence {
	lat := p.eng.Metrics().QueryLatency.Snapshot().Sub(p.lat)
	ev := Evidence{
		Label:   label,
		Queries: lat.Count,
		HitRate: -1,
		P50:     time.Duration(lat.Quantile(0.5) * float64(time.Second)),
		P99:     time.Duration(lat.Quantile(0.99) * float64(time.Second)),
	}
	if reads := p.eng.Index().Store().Stats().Reads - p.reads; lat.Count > 0 {
		ev.PagesPerQuery = float64(reads) / float64(lat.Count)
	}
	if c := p.eng.Cache(); c != nil {
		st := c.Stats()
		if h, m := st.Hits-p.hits, st.Misses-p.misses; h+m > 0 {
			ev.HitRate = float64(h) / float64(h+m)
		}
	}
	return ev
}

// printEvidence renders the evidence rows collected for a figure. Rows with
// no counted queries (uninstrumented baselines) are skipped.
func printEvidence(w io.Writer, evs []Evidence) {
	n := 0
	for _, e := range evs {
		if e.Queries > 0 {
			n++
		}
	}
	if n == 0 {
		return
	}
	fmt.Fprintln(w, "  obs evidence (engine counter deltas over each run):")
	fmt.Fprintf(w, "  %-22s%10s%10s%13s%10s%10s\n",
		"run", "queries", "hit rate", "pages/query", "p50 ms", "p99 ms")
	for _, e := range evs {
		if e.Queries == 0 {
			continue
		}
		hr := "-"
		if e.HitRate >= 0 {
			hr = fmt.Sprintf("%.1f%%", e.HitRate*100)
		}
		fmt.Fprintf(w, "  %-22s%10d%10s%13.2f%10.3f%10.3f\n",
			e.Label, e.Queries, hr, e.PagesPerQuery,
			float64(e.P50)/1e6, float64(e.P99)/1e6)
	}
}
