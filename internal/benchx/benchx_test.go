package benchx

import (
	"bytes"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"rased/internal/cube"
)

var (
	wsOnce sync.Once
	ws     *Workspace
	wsErr  error
)

// testWorkspace is a 3-year deployment shared by the shape tests.
func testWorkspace(t *testing.T) *Workspace {
	t.Helper()
	wsOnce.Do(func() {
		ws, wsErr = NewWorkspace(WorkspaceConfig{
			Years:           3,
			UpdatesPerDay:   80,
			Seed:            2,
			Countries:       30,
			RoadTypes:       8,
			ReadLatency:     100 * time.Microsecond,
			WithDBMS:        true,
			DBMSBufferBytes: 1 << 20,
		})
	})
	if wsErr != nil {
		t.Fatal(wsErr)
	}
	return ws
}

func TestMain(m *testing.M) {
	code := m.Run()
	if ws != nil {
		ws.Close()
	}
	os.Exit(code)
}

func TestWorkspaceShape(t *testing.T) {
	w := testWorkspace(t)
	if w.Records == 0 {
		t.Fatal("no records")
	}
	counts := w.Index.NumCubes()
	wantDays := int(w.Hi-w.Lo) + 1
	if counts[0] != wantDays {
		t.Errorf("daily cubes = %d, want %d", counts[0], wantDays)
	}
	if w.Table.Count() != w.Records {
		t.Errorf("dbms table = %d records, want %d", w.Table.Count(), w.Records)
	}
	if _, err := NewWorkspace(WorkspaceConfig{Years: 0}); err == nil {
		t.Error("years 0 should fail")
	}
}

func TestFig7Shape(t *testing.T) {
	w := testWorkspace(t)
	sizes := []int{8, 32, 128, 512}
	spans := []int{1, 6}
	points, err := Fig7(w, sizes, spans, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(sizes)*len(spans) {
		t.Fatalf("points = %d", len(points))
	}
	// Disk reads must be non-increasing in cache size for every span, and
	// drop substantially from the smallest to the largest cache.
	for _, span := range spans {
		var series []float64
		for _, size := range sizes {
			for _, p := range points {
				if p.SpanMonths == span && p.CacheCubes == size {
					series = append(series, p.AvgDisk)
				}
			}
		}
		for i := 1; i < len(series); i++ {
			if series[i] > series[i-1]+0.5 {
				t.Errorf("span %d: disk reads increase with cache size: %v", span, series)
			}
		}
		if series[len(series)-1] > series[0] {
			t.Errorf("span %d: largest cache no better than smallest: %v", span, series)
		}
	}
	// Longer spans cost at least as much disk at the smallest cache.
	small := map[int]float64{}
	for _, p := range points {
		if p.CacheCubes == sizes[0] {
			small[p.SpanMonths] = p.AvgDisk
		}
	}
	if small[6] < small[1] {
		t.Errorf("6-month queries should need at least as many reads as 1-month: %v", small)
	}

	// Every sweep cell carries obs evidence covering all its queries, and
	// the cached runs report a hit rate.
	for _, p := range points {
		if p.Ev.Queries != 30 {
			t.Errorf("cell %d×%dmo evidence counted %d queries, want 30", p.CacheCubes, p.SpanMonths, p.Ev.Queries)
		}
		if p.Ev.HitRate < 0 {
			t.Errorf("cached cell %d×%dmo has no hit rate", p.CacheCubes, p.SpanMonths)
		}
		if p.Ev.P99 < p.Ev.P50 {
			t.Errorf("cell %d×%dmo: p99 %v below p50 %v", p.CacheCubes, p.SpanMonths, p.Ev.P99, p.Ev.P50)
		}
	}

	var buf bytes.Buffer
	PrintFig7(&buf, points)
	if buf.Len() == 0 {
		t.Error("empty fig7 output")
	}
	if !strings.Contains(buf.String(), "obs evidence") {
		t.Error("fig7 output missing evidence table")
	}
}

func TestFig8Shape(t *testing.T) {
	points := Fig8(cube.ScaledSchema(30, 8), 16)
	if len(points) != 16*4 {
		t.Fatalf("points = %d", len(points))
	}
	// Storage grows with years and with levels; the 4-level overhead over
	// flat stays close to the paper's 1.15.
	last := map[int]int64{}
	for _, p := range points {
		if p.Bytes <= last[p.Levels] {
			t.Errorf("storage not increasing: %+v", p)
		}
		last[p.Levels] = p.Bytes
	}
	var flat16, full16 int64
	for _, p := range points {
		if p.Years == 16 && p.Levels == 1 {
			flat16 = p.Bytes
		}
		if p.Years == 16 && p.Levels == 4 {
			full16 = p.Bytes
		}
	}
	ratio := float64(full16) / float64(flat16)
	if ratio < 1.10 || ratio > 1.25 {
		t.Errorf("4-level/flat ratio = %.3f, paper reports ~1.15", ratio)
	}

	var buf bytes.Buffer
	PrintFig8(&buf, points)
	if buf.Len() == 0 {
		t.Error("empty fig8 output")
	}
}

func TestFig9Shape(t *testing.T) {
	w := testWorkspace(t)
	windows := []int{1, 3}
	points, err := Fig9(w, windows, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	get := func(years int, variant string) Fig9Point {
		for _, p := range points {
			if p.WindowYears == years && p.Variant == variant {
				return p
			}
		}
		t.Fatalf("missing point %d %s", years, variant)
		return Fig9Point{}
	}
	for _, y := range windows {
		f, o, r := get(y, VariantFlat), get(y, VariantOpt), get(y, VariantFull)
		// The flat variant reads ~365*y cubes; the optimizer a handful.
		if f.AvgCubes < float64(y*300) {
			t.Errorf("%dy flat reads %f cubes, want ~%d", y, f.AvgCubes, y*365)
		}
		if o.AvgCubes > 40 {
			t.Errorf("%dy optimizer reads %f cubes, want few", y, o.AvgCubes)
		}
		// Hierarchy + optimizer beats flat by a wide margin; cache removes
		// the remaining disk reads on recent-heavy windows.
		if f.AvgLatency < o.AvgLatency*10 {
			t.Errorf("%dy: flat %v not >> optimized %v", y, f.AvgLatency, o.AvgLatency)
		}
		if r.AvgDisk > o.AvgDisk {
			t.Errorf("%dy: cache increased disk reads: %f > %f", y, r.AvgDisk, o.AvgDisk)
		}
	}
	// Flat latency grows with the window; the full system stays flat-ish.
	if get(3, VariantFlat).AvgLatency < get(1, VariantFlat).AvgLatency {
		t.Error("flat latency should grow with the window")
	}
	// Evidence: only the cached variant reports a hit rate, and its page
	// reads per query stay below the uncached optimizer's.
	for _, y := range windows {
		f, o, r := get(y, VariantFlat), get(y, VariantOpt), get(y, VariantFull)
		if f.Ev.HitRate >= 0 || o.Ev.HitRate >= 0 {
			t.Errorf("%dy: cacheless variants report hit rates %f %f", y, f.Ev.HitRate, o.Ev.HitRate)
		}
		if r.Ev.HitRate < 0 {
			t.Errorf("%dy: cached variant has no hit rate", y)
		}
		if r.Ev.PagesPerQuery > o.Ev.PagesPerQuery {
			t.Errorf("%dy: cache raised pages/query: %f > %f", y, r.Ev.PagesPerQuery, o.Ev.PagesPerQuery)
		}
	}

	var buf bytes.Buffer
	PrintFig9(&buf, points)
	if buf.Len() == 0 {
		t.Error("empty fig9 output")
	}
	if !strings.Contains(buf.String(), "obs evidence") {
		t.Error("fig9 output missing evidence table")
	}
}

func TestFig10Shape(t *testing.T) {
	w := testWorkspace(t)
	windows := []int{1, 3}
	points, err := Fig10(w, windows, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	get := func(years int, engine string) Fig10Point {
		for _, p := range points {
			if p.WindowYears == years && p.Engine == engine {
				return p
			}
		}
		t.Fatalf("missing point %d %s", years, engine)
		return Fig10Point{}
	}
	for _, y := range windows {
		r, d := get(y, "RASED"), get(y, "DBMS")
		if d.AvgLatency < r.AvgLatency*20 {
			t.Errorf("%dy: DBMS %v not orders slower than RASED %v", y, d.AvgLatency, r.AvgLatency)
		}
	}
	// The DBMS cost is flat in the window (full scan either way).
	d1, d3 := get(1, "DBMS"), get(3, "DBMS")
	ratio := float64(d3.AvgLatency) / float64(d1.AvgLatency)
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("DBMS latency should be window-independent: 1y=%v 3y=%v", d1.AvgLatency, d3.AvgLatency)
	}
	if d1.AvgDisk != d3.AvgDisk {
		t.Errorf("DBMS disk reads differ across windows: %f vs %f", d1.AvgDisk, d3.AvgDisk)
	}

	// The clustered extension baseline: scan scales with the window (so the
	// 1-year scan beats the full scan) but still loses to RASED.
	c1, c3 := get(1, "DBMS-clustered"), get(3, "DBMS-clustered")
	if c1.AvgDisk >= d1.AvgDisk {
		t.Errorf("clustered 1y scan (%f reads) should beat full scan (%f)", c1.AvgDisk, d1.AvgDisk)
	}
	if c3.AvgDisk <= c1.AvgDisk {
		t.Errorf("clustered scan should grow with window: 1y=%f 3y=%f", c1.AvgDisk, c3.AvgDisk)
	}
	if c1.AvgLatency < get(1, "RASED").AvgLatency {
		t.Errorf("clustered baseline should not beat RASED: %v vs %v",
			c1.AvgLatency, get(1, "RASED").AvgLatency)
	}

	// Evidence rows exist for the RASED runs; the DBMS engines are outside
	// the obs registry and print as no rows rather than zeros.
	for _, y := range windows {
		if get(y, "RASED").Ev.Queries != 2 {
			t.Errorf("%dy: RASED evidence counted %d queries, want 2", y, get(y, "RASED").Ev.Queries)
		}
		if get(y, "DBMS").Ev.Queries != 0 {
			t.Errorf("%dy: DBMS row unexpectedly carries evidence", y)
		}
	}

	var buf bytes.Buffer
	PrintFig10(&buf, points)
	if buf.Len() == 0 {
		t.Error("empty fig10 output")
	}
	if !strings.Contains(buf.String(), "obs evidence") {
		t.Error("fig10 output missing evidence table")
	}
}

func TestAblationAllocationShape(t *testing.T) {
	w := testWorkspace(t)
	points, err := AblationAllocation(w, StandardAllocations(), 64, []int{1, 12}, 40, 9)
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string, span int) AllocationPoint {
		for _, p := range points {
			if p.Name == name && p.SpanMonths == span {
				return p
			}
		}
		t.Fatalf("missing point %s/%d", name, span)
		return AllocationPoint{}
	}
	// The paper's trade-off: all-daily wins short recent windows,
	// coarse-heavy wins long windows.
	daily1, coarse1 := get("all-daily (α=1)", 1), get("coarse-heavy", 1)
	daily12, coarse12 := get("all-daily (α=1)", 12), get("coarse-heavy", 12)
	if daily1.AvgDisk > coarse1.AvgDisk {
		t.Errorf("1-month: all-daily (%.2f reads) should beat coarse-heavy (%.2f)",
			daily1.AvgDisk, coarse1.AvgDisk)
	}
	if coarse12.AvgDisk > daily12.AvgDisk {
		t.Errorf("12-month: coarse-heavy (%.2f reads) should beat all-daily (%.2f)",
			coarse12.AvgDisk, daily12.AvgDisk)
	}

	var buf bytes.Buffer
	PrintAblationAllocation(&buf, points)
	if buf.Len() == 0 {
		t.Error("empty ablation output")
	}
}

func TestAblationEvictionShape(t *testing.T) {
	w := testWorkspace(t)
	points, err := AblationEviction(w, 64, []int{1, 6}, 60, 11)
	if err != nil {
		t.Fatal(err)
	}
	get := func(policy string, span int) EvictionPoint {
		for _, p := range points {
			if p.Policy == policy && p.SpanMonths == span {
				return p
			}
		}
		t.Fatalf("missing point %s/%d", policy, span)
		return EvictionPoint{}
	}
	for _, span := range []int{1, 6} {
		none := get("none", span)
		pre := get("preload", span)
		lru := get("lru", span)
		if pre.AvgDisk >= none.AvgDisk {
			t.Errorf("span %d: preload (%.2f) should beat no cache (%.2f)", span, pre.AvgDisk, none.AvgDisk)
		}
		if lru.AvgDisk >= none.AvgDisk {
			t.Errorf("span %d: LRU (%.2f) should beat no cache (%.2f)", span, lru.AvgDisk, none.AvgDisk)
		}
	}
	var buf bytes.Buffer
	PrintAblationEviction(&buf, points)
	if buf.Len() == 0 {
		t.Error("empty eviction ablation output")
	}
}

func TestFig10RequiresDBMS(t *testing.T) {
	noDB, err := NewWorkspace(WorkspaceConfig{
		Years: 1, UpdatesPerDay: 10, Seed: 1, Countries: 10, RoadTypes: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer noDB.Close()
	if _, err := Fig10(noDB, []int{1}, 1, 1); err == nil {
		t.Error("Fig10 without DBMS should fail")
	}
}
