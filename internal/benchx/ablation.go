package benchx

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"rased/internal/cache"
	"rased/internal/core"
	"rased/internal/plan"
	"rased/internal/temporal"
)

// AllocationPoint is one measurement of the cache-allocation ablation.
type AllocationPoint struct {
	Name       string
	Allocation cache.Allocation
	SpanMonths int
	AvgLatency time.Duration
	AvgDisk    float64
}

// NamedAllocation pairs an allocation with a display name.
type NamedAllocation struct {
	Name  string
	Alloc cache.Allocation
}

// StandardAllocations are the ablation settings for the (α, β, γ, θ)
// trade-off of Section VII-A: all-daily favors short recent windows,
// coarse-heavy favors long windows, and the paper's deployed default
// balances them.
func StandardAllocations() []NamedAllocation {
	return []NamedAllocation{
		{"all-daily (α=1)", cache.Allocation{Alpha: 1}},
		{"paper default", cache.DefaultAllocation},
		{"coarse-heavy", cache.Allocation{Alpha: 0.1, Beta: 0.2, Gamma: 0.4, Theta: 0.3}},
	}
}

// AblationAllocation measures the cache allocation trade-off: a fixed slot
// budget split differently across levels, under short and long query spans.
// The paper's rationale — "higher α would cache more daily details but less
// covered period, while higher γ and θ would favor longer period queries" —
// should appear as a crossover between the all-daily and coarse-heavy rows.
func AblationAllocation(ws *Workspace, allocs []NamedAllocation, slots int,
	spanMonths []int, queries int, seed int64) ([]AllocationPoint, error) {
	var out []AllocationPoint
	for _, na := range allocs {
		eng, err := ws.newEngine(core.Options{
			CacheSlots:        slots,
			Allocation:        na.Alloc,
			LevelOptimization: true,
		})
		if err != nil {
			return nil, err
		}
		for _, span := range spanMonths {
			rng := rand.New(rand.NewSource(seed + int64(span)))
			var disk int
			avg, err := measure(queries, func() error {
				lo, hi := ws.recentWindow(rng, span*30)
				res, err := eng.Analyze(ws.singleCellQuery(rng, lo, hi))
				if err != nil {
					return err
				}
				disk += res.Stats.DiskReads
				return nil
			})
			if err != nil {
				return nil, err
			}
			out = append(out, AllocationPoint{
				Name:       na.Name,
				Allocation: na.Alloc,
				SpanMonths: span,
				AvgLatency: avg,
				AvgDisk:    float64(disk) / float64(queries),
			})
		}
	}
	return out, nil
}

// EvictionPoint is one measurement of the cache-policy ablation.
type EvictionPoint struct {
	Policy     string // "preload" | "lru" | "none"
	SpanMonths int
	AvgDisk    float64
}

// AblationEviction compares the paper's statically preloaded recency cache
// against a demand-filled LRU of the same capacity (and against no cache) on
// the recency-skewed single-cell workload. Both policies drive the level
// optimizer's cost model through their residency sets; disk reads per query
// are the outcome. The preload policy pays nothing to learn the hot set; LRU
// discovers it from the stream and can additionally retain old-but-rehit
// cubes the static policy never holds.
func AblationEviction(ws *Workspace, slots int, spanMonths []int, queries int, seed int64) ([]EvictionPoint, error) {
	var out []EvictionPoint

	// Policy 1: the paper's preloaded recency cache.
	pre, err := cache.New(slots, cache.DefaultAllocation)
	if err != nil {
		return nil, err
	}
	if err := pre.Preload(ws.Index); err != nil {
		return nil, err
	}
	preFetch := cache.Fetcher{Cache: pre, Src: ws.Index}

	// Policy 2: demand-filled LRU of the same capacity.
	lru, err := cache.NewLRU(slots)
	if err != nil {
		return nil, err
	}
	lruFetch := cache.LRUFetcher{LRU: lru, Src: ws.Index}

	type policy struct {
		name  string
		view  plan.CacheView // nil = nothing resident
		fetch func(p temporal.Period) (resident bool, err error)
	}
	policies := []policy{
		{"preload", pre, func(p temporal.Period) (bool, error) {
			hit := pre.Contains(p)
			_, err := preFetch.Fetch(p)
			return hit, err
		}},
		{"lru", lru, func(p temporal.Period) (bool, error) {
			hit := lru.Contains(p)
			_, err := lruFetch.Fetch(p)
			return hit, err
		}},
		{"none", nil, func(p temporal.Period) (bool, error) {
			_, err := ws.Index.FetchView(p)
			return false, err
		}},
	}

	for _, pol := range policies {
		for _, span := range spanMonths {
			rng := rand.New(rand.NewSource(seed + int64(span)))
			disk := 0
			for q := 0; q < queries; q++ {
				lo, hi := ws.recentWindow(rng, span*30)
				pl, err := plan.Optimize(lo, hi, temporal.Yearly, ws.Index, pol.view)
				if err != nil {
					return nil, err
				}
				for _, p := range pl.Periods {
					hit, err := pol.fetch(p)
					if err != nil {
						return nil, err
					}
					if !hit {
						disk++
					}
				}
			}
			out = append(out, EvictionPoint{
				Policy:     pol.name,
				SpanMonths: span,
				AvgDisk:    float64(disk) / float64(queries),
			})
		}
	}
	return out, nil
}

// PrintAblationEviction renders the eviction-policy ablation.
func PrintAblationEviction(w io.Writer, points []EvictionPoint) {
	fmt.Fprintln(w, "Ablation: cache policy (preload vs LRU vs none) — avg disk reads per query")
	var spans []int
	seen := map[int]bool{}
	for _, p := range points {
		if !seen[p.SpanMonths] {
			seen[p.SpanMonths] = true
			spans = append(spans, p.SpanMonths)
		}
	}
	fmt.Fprintf(w, "%-12s", "policy")
	for _, s := range spans {
		fmt.Fprintf(w, "%12s", fmt.Sprintf("%d mo", s))
	}
	fmt.Fprintln(w)
	for _, name := range []string{"preload", "lru", "none"} {
		fmt.Fprintf(w, "%-12s", name)
		for _, s := range spans {
			for _, p := range points {
				if p.Policy == name && p.SpanMonths == s {
					fmt.Fprintf(w, "%12.2f", p.AvgDisk)
				}
			}
		}
		fmt.Fprintln(w)
	}
}

// PrintAblationAllocation renders the allocation ablation.
func PrintAblationAllocation(w io.Writer, points []AllocationPoint) {
	fmt.Fprintln(w, "Ablation: cache allocation (α, β, γ, θ) — avg disk reads per query")
	fmt.Fprintf(w, "%-20s", "allocation")
	var spans []int
	seen := map[int]bool{}
	for _, p := range points {
		if !seen[p.SpanMonths] {
			seen[p.SpanMonths] = true
			spans = append(spans, p.SpanMonths)
		}
	}
	for _, s := range spans {
		fmt.Fprintf(w, "%12s", fmt.Sprintf("%d mo", s))
	}
	fmt.Fprintln(w)
	var names []string
	seenN := map[string]bool{}
	for _, p := range points {
		if !seenN[p.Name] {
			seenN[p.Name] = true
			names = append(names, p.Name)
		}
	}
	for _, n := range names {
		fmt.Fprintf(w, "%-20s", n)
		for _, s := range spans {
			for _, p := range points {
				if p.Name == n && p.SpanMonths == s {
					fmt.Fprintf(w, "%12.2f", p.AvgDisk)
				}
			}
		}
		fmt.Fprintln(w)
	}
}
