package benchx

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"rased/internal/cache"
	"rased/internal/core"
	"rased/internal/cube"
	"rased/internal/osm"
	"rased/internal/roads"
	"rased/internal/temporal"
	"rased/internal/update"
)

// singleCellQuery builds the paper's measurement query: "each query retrieves
// only one data cube cell", i.e. every dimension filtered to one value and no
// group-by, so latency isolates cube retrieval.
func (ws *Workspace) singleCellQuery(rng *rand.Rand, from, to temporal.Day) core.Query {
	return core.Query{
		From: from, To: to,
		ElementTypes: []string{osm.ElementType(rng.Intn(3)).String()},
		Countries:    []string{ws.Schema.Countries[rng.Intn(len(ws.Schema.Countries))]},
		RoadTypes:    []string{roads.Name(rng.Intn(len(ws.Schema.RoadTypes)))},
		UpdateTypes:  []string{update.Type(rng.Intn(4)).String()},
	}
}

// recentWindow picks a span-days window whose end is recency-skewed (the
// paper's caching rationale: inquiries about recent updates dominate).
func (ws *Workspace) recentWindow(rng *rand.Rand, spanDays int) (lo, hi temporal.Day) {
	offset := temporal.Day(rng.ExpFloat64() * 45)
	hi = ws.Hi - offset
	if hi < ws.Lo {
		hi = ws.Lo
	}
	lo = hi - temporal.Day(spanDays-1)
	if lo < ws.Lo {
		lo = ws.Lo
	}
	return lo, hi
}

// windowStart returns the first day of a query window spanning the last
// `years` calendar years of coverage (the paper's Figures 9 and 10 vary the
// window in whole years).
func (ws *Workspace) windowStart(years int) temporal.Day {
	endYear := temporal.YearPeriod(ws.Hi).Index
	lo := temporal.Period{Level: temporal.Yearly, Index: endYear - years + 1}.Start()
	if lo < ws.Lo {
		lo = ws.Lo
	}
	return lo
}

// newEngine builds an engine over the workspace index.
func (ws *Workspace) newEngine(opts core.Options) (*core.Engine, error) {
	return core.NewEngine(ws.Index, opts)
}

// measure runs fn n times and returns the average wall time.
func measure(n int, fn func() error) (time.Duration, error) {
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := fn(); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(n), nil
}

// ---------------------------------------------------------------------------
// Figure 7: setting the cache size.

// Fig7Point is one measurement of the cache-size sweep.
type Fig7Point struct {
	CacheCubes int
	SpanMonths int
	AvgLatency time.Duration
	AvgDisk    float64
	Ev         Evidence
}

// Fig7 reproduces Figure 7: query response time while varying the cache size
// (in cubes — the paper's 128 MB..4 GB maps to 32..1000 of its 4 MB cubes)
// under query loads spanning 1, 3, 6, and 12 months.
func Fig7(ws *Workspace, cacheSizes, spanMonths []int, queries int, seed int64) ([]Fig7Point, error) {
	var out []Fig7Point
	for _, slots := range cacheSizes {
		eng, err := ws.newEngine(core.Options{
			CacheSlots:        slots,
			Allocation:        cache.DefaultAllocation,
			LevelOptimization: true,
		})
		if err != nil {
			return nil, err
		}
		for _, span := range spanMonths {
			rng := rand.New(rand.NewSource(seed + int64(span)*1000))
			probe := startEvidence(eng)
			var disk int
			avg, err := measure(queries, func() error {
				lo, hi := ws.recentWindow(rng, span*30)
				res, err := eng.Analyze(ws.singleCellQuery(rng, lo, hi))
				if err != nil {
					return err
				}
				disk += res.Stats.DiskReads
				return nil
			})
			if err != nil {
				return nil, err
			}
			out = append(out, Fig7Point{
				CacheCubes: slots,
				SpanMonths: span,
				AvgLatency: avg,
				AvgDisk:    float64(disk) / float64(queries),
				Ev:         probe.finish(fmt.Sprintf("%d cubes x %d mo", slots, span)),
			})
		}
	}
	return out, nil
}

// PrintFig7 renders the sweep as the paper's series (one line per span).
func PrintFig7(w io.Writer, points []Fig7Point) {
	fmt.Fprintln(w, "Figure 7: setting RASED cache size (avg ms per query)")
	fmt.Fprintf(w, "%-12s", "cache cubes")
	spans := spanSet(points)
	for _, s := range spans {
		fmt.Fprintf(w, "%12s", fmt.Sprintf("%d mo", s))
	}
	fmt.Fprintln(w)
	for _, c := range cacheSet(points) {
		fmt.Fprintf(w, "%-12d", c)
		for _, s := range spans {
			for _, p := range points {
				if p.CacheCubes == c && p.SpanMonths == s {
					fmt.Fprintf(w, "%12.3f", float64(p.AvgLatency)/1e6)
				}
			}
		}
		fmt.Fprintln(w)
	}
	evs := make([]Evidence, len(points))
	for i, p := range points {
		evs[i] = p.Ev
	}
	printEvidence(w, evs)
}

func spanSet(points []Fig7Point) []int {
	var out []int
	seen := map[int]bool{}
	for _, p := range points {
		if !seen[p.SpanMonths] {
			seen[p.SpanMonths] = true
			out = append(out, p.SpanMonths)
		}
	}
	return out
}

func cacheSet(points []Fig7Point) []int {
	var out []int
	seen := map[int]bool{}
	for _, p := range points {
		if !seen[p.CacheCubes] {
			seen[p.CacheCubes] = true
			out = append(out, p.CacheCubes)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Figure 8: index levels vs storage.

// Fig8Point is the storage cost of an index configuration.
type Fig8Point struct {
	Years  int
	Levels int
	Cubes  int
	Bytes  int64
}

// Fig8 reproduces Figure 8: the storage required per number of hierarchy
// levels while varying the covered period 1..maxYears. Because every cube
// occupies one fixed-size page, storage is page size times the period count —
// computed exactly from the calendar.
func Fig8(schema *cube.Schema, maxYears int) []Fig8Point {
	pageSize := int64(cube.PageSize(schema))
	var out []Fig8Point
	for years := 1; years <= maxYears; years++ {
		lo := temporal.NewDay(2005, time.January, 1)
		hi := temporal.NewDay(2005+years-1, time.December, 31)
		days := int(hi-lo) + 1
		weeks := len(temporal.PeriodsBetween(temporal.Weekly, lo, hi))
		months := len(temporal.PeriodsBetween(temporal.Monthly, lo, hi))
		cubes := []int{
			days,
			days + weeks,
			days + weeks + months,
			days + weeks + months + years,
		}
		for levels := 1; levels <= 4; levels++ {
			out = append(out, Fig8Point{
				Years:  years,
				Levels: levels,
				Cubes:  cubes[levels-1],
				Bytes:  int64(cubes[levels-1]) * pageSize,
			})
		}
	}
	return out
}

// PrintFig8 renders storage per level count.
func PrintFig8(w io.Writer, points []Fig8Point) {
	fmt.Fprintln(w, "Figure 8: index storage vs number of levels (GB-equivalent pages)")
	fmt.Fprintf(w, "%-8s%14s%14s%14s%14s%12s\n", "years", "1 level", "2 levels", "3 levels", "4 levels", "4L/flat")
	byYear := map[int][]Fig8Point{}
	years := []int{}
	for _, p := range points {
		if len(byYear[p.Years]) == 0 {
			years = append(years, p.Years)
		}
		byYear[p.Years] = append(byYear[p.Years], p)
	}
	for _, y := range years {
		ps := byYear[y]
		fmt.Fprintf(w, "%-8d", y)
		for _, p := range ps {
			fmt.Fprintf(w, "%14d", p.Bytes)
		}
		fmt.Fprintf(w, "%12.3f\n", float64(ps[3].Bytes)/float64(ps[0].Bytes))
	}
}

// ---------------------------------------------------------------------------
// Figure 9: effect of each component.

// Variant names for Figure 9.
const (
	VariantFlat = "RASED-F" // flat index: no hierarchy, no cache
	VariantOpt  = "RASED-O" // hierarchy + level optimizer, no cache
	VariantFull = "RASED"   // + cache
)

// Fig9Point is one variant × window measurement.
type Fig9Point struct {
	WindowYears int
	Variant     string
	AvgLatency  time.Duration
	AvgCubes    float64
	AvgDisk     float64
	Ev          Evidence
}

// Fig9 reproduces Figure 9: query time of the three RASED variants while
// varying the query window from one to sixteen years (windows end at the most
// recent covered day, as dashboards query backwards from now).
func Fig9(ws *Workspace, windowYears []int, queries int, seed int64) ([]Fig9Point, error) {
	variants := []struct {
		name string
		opts core.Options
	}{
		{VariantFlat, core.Options{CacheSlots: 0, LevelOptimization: false}},
		{VariantOpt, core.Options{CacheSlots: 0, LevelOptimization: true}},
		{VariantFull, core.Options{CacheSlots: 512, Allocation: cache.DefaultAllocation, LevelOptimization: true}},
	}
	var out []Fig9Point
	for _, v := range variants {
		eng, err := ws.newEngine(v.opts)
		if err != nil {
			return nil, err
		}
		for _, years := range windowYears {
			rng := rand.New(rand.NewSource(seed + int64(years)))
			lo := ws.windowStart(years)
			probe := startEvidence(eng)
			var cubes, disk int
			avg, err := measure(queries, func() error {
				res, err := eng.Analyze(ws.singleCellQuery(rng, lo, ws.Hi))
				if err != nil {
					return err
				}
				cubes += res.Stats.CubesFetched
				disk += res.Stats.DiskReads
				return nil
			})
			if err != nil {
				return nil, err
			}
			out = append(out, Fig9Point{
				WindowYears: years,
				Variant:     v.name,
				AvgLatency:  avg,
				AvgCubes:    float64(cubes) / float64(queries),
				AvgDisk:     float64(disk) / float64(queries),
				Ev:          probe.finish(fmt.Sprintf("%s x %d y", v.name, years)),
			})
		}
	}
	return out, nil
}

// PrintFig9 renders the ablation series.
func PrintFig9(w io.Writer, points []Fig9Point) {
	fmt.Fprintln(w, "Figure 9: effect of each component in RASED (avg ms per query)")
	fmt.Fprintf(w, "%-8s%14s%14s%14s\n", "years", VariantFlat, VariantOpt, VariantFull)
	byYear := map[int]map[string]Fig9Point{}
	var years []int
	for _, p := range points {
		if byYear[p.WindowYears] == nil {
			byYear[p.WindowYears] = map[string]Fig9Point{}
			years = append(years, p.WindowYears)
		}
		byYear[p.WindowYears][p.Variant] = p
	}
	for _, y := range years {
		m := byYear[y]
		fmt.Fprintf(w, "%-8d%14.3f%14.3f%14.3f\n", y,
			float64(m[VariantFlat].AvgLatency)/1e6,
			float64(m[VariantOpt].AvgLatency)/1e6,
			float64(m[VariantFull].AvgLatency)/1e6)
	}
	evs := make([]Evidence, len(points))
	for i, p := range points {
		evs[i] = p.Ev
	}
	printEvidence(w, evs)
}

// ---------------------------------------------------------------------------
// Figure 10: RASED vs a traditional DBMS.

// Fig10Point is one engine × window measurement.
type Fig10Point struct {
	WindowYears int
	Engine      string // "RASED" or "DBMS"
	AvgLatency  time.Duration
	AvgDisk     float64
	Ev          Evidence
}

// Fig10 reproduces Figure 10: RASED against the scan-based DBMS baseline
// (whose buffer pool gets the same memory budget as RASED's cache) while
// varying the query window from one to sixteen years. The workspace must be
// built WithDBMS.
func Fig10(ws *Workspace, windowYears []int, queries int, seed int64) ([]Fig10Point, error) {
	if ws.Table == nil {
		return nil, fmt.Errorf("benchx: Fig10 needs a workspace built WithDBMS")
	}
	eng, err := ws.newEngine(core.Options{
		CacheSlots: 512, Allocation: cache.DefaultAllocation, LevelOptimization: true,
	})
	if err != nil {
		return nil, err
	}
	var out []Fig10Point
	for _, years := range windowYears {
		rng := rand.New(rand.NewSource(seed + int64(years)))
		lo := ws.windowStart(years)

		probe := startEvidence(eng)
		var disk int
		avg, err := measure(queries, func() error {
			res, err := eng.Analyze(ws.singleCellQuery(rng, lo, ws.Hi))
			if err != nil {
				return err
			}
			disk += res.Stats.DiskReads
			return nil
		})
		if err != nil {
			return nil, err
		}
		out = append(out, Fig10Point{WindowYears: years, Engine: "RASED",
			AvgLatency: avg, AvgDisk: float64(disk) / float64(queries),
			Ev: probe.finish(fmt.Sprintf("RASED x %d y", years))})

		rng = rand.New(rand.NewSource(seed + int64(years)))
		disk = 0
		avg, err = measure(queries, func() error {
			res, err := ws.Table.Analyze(ws.singleCellQuery(rng, lo, ws.Hi))
			if err != nil {
				return err
			}
			disk += res.Stats.DiskReads
			return nil
		})
		if err != nil {
			return nil, err
		}
		out = append(out, Fig10Point{WindowYears: years, Engine: "DBMS",
			AvgLatency: avg, AvgDisk: float64(disk) / float64(queries)})

		// The extension baseline: the table clustered on Date (scan scales
		// with the window instead of the relation — still far from RASED).
		if ws.Clustered != nil {
			rng = rand.New(rand.NewSource(seed + int64(years)))
			disk = 0
			avg, err = measure(queries, func() error {
				res, err := ws.Clustered.Analyze(ws.singleCellQuery(rng, lo, ws.Hi))
				if err != nil {
					return err
				}
				disk += res.Stats.DiskReads
				return nil
			})
			if err != nil {
				return nil, err
			}
			out = append(out, Fig10Point{WindowYears: years, Engine: "DBMS-clustered",
				AvgLatency: avg, AvgDisk: float64(disk) / float64(queries)})
		}
	}
	return out, nil
}

// PrintFig10 renders the comparison (with the clustered-table extension
// baseline when it was measured).
func PrintFig10(w io.Writer, points []Fig10Point) {
	byYear := map[int]map[string]Fig10Point{}
	var years []int
	hasClustered := false
	for _, p := range points {
		if byYear[p.WindowYears] == nil {
			byYear[p.WindowYears] = map[string]Fig10Point{}
			years = append(years, p.WindowYears)
		}
		byYear[p.WindowYears][p.Engine] = p
		if p.Engine == "DBMS-clustered" {
			hasClustered = true
		}
	}
	fmt.Fprintln(w, "Figure 10: RASED vs traditional DBMS (avg ms per query)")
	if hasClustered {
		fmt.Fprintf(w, "%-8s%14s%14s%16s%12s\n", "years", "RASED", "DBMS", "DBMS-clustered", "speedup")
	} else {
		fmt.Fprintf(w, "%-8s%14s%14s%12s\n", "years", "RASED", "DBMS", "speedup")
	}
	for _, y := range years {
		m := byYear[y]
		r, d := m["RASED"].AvgLatency, m["DBMS"].AvgLatency
		speedup := 0.0
		if r > 0 {
			speedup = float64(d) / float64(r)
		}
		if hasClustered {
			fmt.Fprintf(w, "%-8d%14.3f%14.3f%16.3f%12.1fx\n", y,
				float64(r)/1e6, float64(d)/1e6,
				float64(m["DBMS-clustered"].AvgLatency)/1e6, speedup)
		} else {
			fmt.Fprintf(w, "%-8d%14.3f%14.3f%12.1fx\n", y, float64(r)/1e6, float64(d)/1e6, speedup)
		}
	}
	evs := make([]Evidence, len(points))
	for i, p := range points {
		evs[i] = p.Ev
	}
	printEvidence(w, evs)
}
