// Package osmgen generates a deterministic synthetic OSM world: per-country
// road networks that grow and churn day by day, emitted as the exact file
// formats RASED crawls — daily OsmChange diffs, changeset metadata files, and
// sorted full-history dumps.
//
// This package substitutes the real 3 TB OSM planet (see DESIGN.md). The
// distributions are shaped after the paper's observations: country activity
// is heavily skewed (United States, India, Germany, Brazil lead Figure 3),
// way edits dominate node and relation edits, and modifications outnumber
// creations. All output is a pure function of the Config, so experiments are
// reproducible.
package osmgen

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"time"

	"rased/internal/geo"
	"rased/internal/osm"
	"rased/internal/osmxml"
	"rased/internal/roads"
	"rased/internal/temporal"
)

// Config parameterizes the synthetic world.
type Config struct {
	Seed          int64
	Start         temporal.Day // first generated day
	UpdatesPerDay int          // mean daily road-network updates
	SeedElements  int          // elements pre-created before day one
}

// DefaultConfig returns a laptop-scale configuration.
func DefaultConfig() Config {
	return Config{
		Seed:          1,
		Start:         temporal.NewDay(2020, time.January, 1),
		UpdatesPerDay: 400,
		SeedElements:  2000,
	}
}

// DayArtifacts is what OSM publishes for one day: the diff file and the
// changeset metadata covering it.
type DayArtifacts struct {
	Day        temporal.Day
	Change     *osmxml.Change
	Changesets []osm.Changeset
}

// Generator produces the world. Not safe for concurrent use.
type Generator struct {
	cfg Config
	rng *rand.Rand
	reg *geo.Registry

	day           temporal.Day
	nextID        [osm.NumElementTypes]int64
	nextChangeset int64
	nextUID       int64

	live      map[osm.Key]*osm.Element
	home      map[osm.Key][2]float64 // element -> (lat, lon)
	countryOf map[osm.Key]int
	byCountry map[int]*liveSet // live keys per country, for session-local picks
	nLive     int

	history    []*osm.Element
	changesets []osm.Changeset

	countryCDF []float64 // cumulative country pick distribution
	roadCDF    []float64 // cumulative road-type pick distribution over way types
	nodeRoads  []int     // node-typed road feature values
}

// New builds a generator and pre-seeds the world with cfg.SeedElements
// elements dated the day before cfg.Start.
func New(cfg Config) *Generator {
	g := &Generator{
		cfg:           cfg,
		rng:           rand.New(rand.NewSource(cfg.Seed)),
		reg:           geo.Default(),
		day:           cfg.Start,
		nextChangeset: 1,
		nextUID:       1,
		live:          make(map[osm.Key]*osm.Element),
		home:          make(map[osm.Key][2]float64),
		countryOf:     make(map[osm.Key]int),
		byCountry:     make(map[int]*liveSet),
	}
	for t := range g.nextID {
		g.nextID[t] = 1
	}
	g.buildDistributions()
	g.seedWorld()
	return g
}

// buildDistributions derives the skewed country and road-type pick
// distributions from the registry weights and a Zipf-like activity factor.
func (g *Generator) buildDistributions() {
	n := g.reg.NumCountries()
	weights := make([]float64, n)
	// Activity rank: a random permutation seeded by cfg.Seed, weighted
	// 1/(rank+1) (Zipf) times the square root of the area weight, so large
	// mapped countries dominate but small active ones still show up.
	perm := g.rng.Perm(n)
	for rank, c := range perm {
		w := float64(g.reg.Place(c).Weight)
		weights[c] = (1.0 / float64(rank+1)) * (1 + w/4)
	}
	g.countryCDF = cdf(weights)

	// Way road types: principal classes and service/track dominate.
	rw := make([]float64, roads.Num())
	for v := 0; v < roads.Num(); v++ {
		name := roads.Name(v)
		switch {
		case name == "residential":
			rw[v] = 30
		case name == "service" || name == "track" || name == "footway" || name == "path":
			rw[v] = 12
		case roads.Principal(v):
			rw[v] = 6
		case name == "unknown":
			rw[v] = 0
		default:
			rw[v] = 0.5
		}
	}
	g.roadCDF = cdf(rw)

	for _, n := range []string{"traffic_signals", "crossing", "stop", "give_way", "bus_stop", "street_lamp", "turning_circle", "speed_camera"} {
		if v, ok := roads.ByName(n); ok {
			g.nodeRoads = append(g.nodeRoads, v)
		}
	}
}

func cdf(w []float64) []float64 {
	out := make([]float64, len(w))
	var sum float64
	for i, v := range w {
		sum += v
		out[i] = sum
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

func pick(rng *rand.Rand, cdf []float64) int {
	x := rng.Float64()
	i := sort.SearchFloat64s(cdf, x)
	if i >= len(cdf) {
		i = len(cdf) - 1
	}
	return i
}

// seedWorld creates the initial elements, all stamped the day before Start so
// day one's diffs reference an existing world.
func (g *Generator) seedWorld() {
	day := g.cfg.Start - 1
	csID := g.newChangesetID()
	var pts [][2]float64
	for i := 0; i < g.cfg.SeedElements; i++ {
		e := g.createElement(day, csID)
		if lat, lon, ok := g.locationOf(e); ok {
			pts = append(pts, [2]float64{lat, lon})
		}
	}
	g.recordChangeset(csID, day, pts)
}

func (g *Generator) newChangesetID() int64 {
	id := g.nextChangeset
	g.nextChangeset++
	return id
}

// timestampFor spreads updates across a day's 24 hours.
func (g *Generator) timestampFor(d temporal.Day) time.Time {
	return d.Time().Add(time.Duration(g.rng.Intn(86400)) * time.Second)
}

// pickType draws an element type: ways dominate, relations are rare.
func (g *Generator) pickType() osm.ElementType {
	x := g.rng.Float64()
	switch {
	case x < 0.55:
		return osm.Way
	case x < 0.99:
		return osm.Node
	default:
		return osm.Relation
	}
}

// createElement makes a brand-new element version 1 in a random country and
// registers it live.
func (g *Generator) createElement(day temporal.Day, csID int64) *osm.Element {
	country := pick(g.rng, g.countryCDF)
	rect := g.reg.RectOf(country)
	lat := rect.MinLat + g.rng.Float64()*(rect.MaxLat-rect.MinLat)
	lon := rect.MinLon + g.rng.Float64()*(rect.MaxLon-rect.MinLon)
	return g.createElementAt(day, csID, lat, lon)
}

// createElementAt makes a new element at a fixed location.
func (g *Generator) createElementAt(day temporal.Day, csID int64, lat, lon float64) *osm.Element {
	t := g.pickType()
	e := &osm.Element{
		Type:        t,
		ID:          g.nextID[t],
		Version:     1,
		Timestamp:   g.timestampFor(day),
		ChangesetID: csID,
		UID:         1 + g.rng.Int63n(500),
		Visible:     true,
	}
	g.nextID[t]++
	e.User = fmt.Sprintf("mapper%03d", e.UID)
	switch t {
	case osm.Node:
		e.Lat, e.Lon = lat, lon
		rt := g.nodeRoads[g.rng.Intn(len(g.nodeRoads))]
		e.SetTag("highway", roads.Name(rt))
	case osm.Way:
		n := 2 + g.rng.Intn(8)
		for i := 0; i < n; i++ {
			e.NodeRefs = append(e.NodeRefs, 1+g.rng.Int63n(1<<40))
		}
		g.tagWay(e)
	case osm.Relation:
		n := 1 + g.rng.Intn(4)
		for i := 0; i < n; i++ {
			e.Members = append(e.Members, osm.Member{
				Type: osm.Way, Ref: 1 + g.rng.Int63n(1<<40), Role: "",
			})
		}
		e.SetTag("route", "road")
		e.SetTag("ref", fmt.Sprintf("R-%d", e.ID))
	}
	g.registerLive(e, lat, lon)
	g.history = append(g.history, e.Clone())
	return e
}

// tagWay assigns a road type tag to a way per the skewed distribution.
func (g *Generator) tagWay(e *osm.Element) {
	rt := pick(g.rng, g.roadCDF)
	name := roads.Name(rt)
	// Refined values like "service:driveway" are expressed through their tag
	// scheme.
	switch {
	case len(name) > 8 && name[:8] == "service:":
		e.SetTag("highway", "service")
		e.SetTag("service", name[8:])
	case len(name) > 6 && name[:6] == "track:":
		e.SetTag("highway", "track")
		e.SetTag("tracktype", name[6:])
	default:
		e.SetTag("highway", name)
	}
	if g.rng.Intn(3) == 0 {
		e.SetTag("name", fmt.Sprintf("Street %d", e.ID%10000))
	}
}

// liveSet is a constant-time random-pick set of element keys.
type liveSet struct {
	keys []osm.Key
	pos  map[osm.Key]int
}

func (s *liveSet) add(k osm.Key) {
	if s.pos == nil {
		s.pos = make(map[osm.Key]int)
	}
	s.pos[k] = len(s.keys)
	s.keys = append(s.keys, k)
}

func (s *liveSet) remove(k osm.Key) {
	p, ok := s.pos[k]
	if !ok {
		return
	}
	last := len(s.keys) - 1
	s.keys[p] = s.keys[last]
	s.pos[s.keys[p]] = p
	s.keys = s.keys[:last]
	delete(s.pos, k)
}

func (g *Generator) registerLive(e *osm.Element, lat, lon float64) {
	k := e.Key()
	g.live[k] = e
	g.home[k] = [2]float64{lat, lon}
	country, ok := g.reg.Resolve(lat, lon)
	if !ok {
		country = -1
	}
	g.countryOf[k] = country
	set := g.byCountry[country]
	if set == nil {
		set = &liveSet{}
		g.byCountry[country] = set
	}
	set.add(k)
	g.nLive++
}

func (g *Generator) unregisterLive(k osm.Key) {
	country, ok := g.countryOf[k]
	if !ok {
		return
	}
	g.byCountry[country].remove(k)
	delete(g.countryOf, k)
	delete(g.live, k)
	delete(g.home, k)
	g.nLive--
}

// pickLive returns a random live element, preferring the given country and
// falling back to any country. Returns nil when the world is empty.
func (g *Generator) pickLive(country int) *osm.Element {
	if set := g.byCountry[country]; set != nil && len(set.keys) > 0 {
		return g.live[set.keys[g.rng.Intn(len(set.keys))]]
	}
	if g.nLive == 0 {
		return nil
	}
	// Fallback: resample countries until a populated one is found. The loop
	// terminates because nLive > 0.
	for {
		c := pick(g.rng, g.countryCDF)
		if set := g.byCountry[c]; set != nil && len(set.keys) > 0 {
			return g.live[set.keys[g.rng.Intn(len(set.keys))]]
		}
	}
}

// modifyElement produces the next version of a live element. Roughly 60% of
// modifications are geometric, the rest metadata-only.
func (g *Generator) modifyElement(e *osm.Element, day temporal.Day, csID int64) *osm.Element {
	nv := e.Clone()
	nv.Version++
	nv.Timestamp = g.timestampFor(day)
	nv.ChangesetID = csID
	nv.UID = 1 + g.rng.Int63n(500)
	nv.User = fmt.Sprintf("mapper%03d", nv.UID)
	if g.rng.Float64() < 0.6 {
		// Geometry update.
		switch nv.Type {
		case osm.Node:
			nv.Lat += (g.rng.Float64() - 0.5) * 0.001
			nv.Lon += (g.rng.Float64() - 0.5) * 0.001
		case osm.Way:
			nv.NodeRefs = append(nv.NodeRefs, 1+g.rng.Int63n(1<<40))
		case osm.Relation:
			nv.Members = append(nv.Members, osm.Member{Type: osm.Way, Ref: 1 + g.rng.Int63n(1<<40)})
		}
	} else {
		// Metadata update: touch a tag without changing geometry.
		nv.SetTag("note", fmt.Sprintf("edit-%d", nv.Version))
	}
	g.live[nv.Key()] = nv
	g.history = append(g.history, nv.Clone())
	return nv
}

// deleteElement produces the final, invisible version of a live element.
func (g *Generator) deleteElement(e *osm.Element, day temporal.Day, csID int64) *osm.Element {
	nv := e.Clone()
	nv.Version++
	nv.Timestamp = g.timestampFor(day)
	nv.ChangesetID = csID
	nv.Visible = false
	g.history = append(g.history, nv.Clone())
	g.unregisterLive(e.Key())
	return nv
}

func (g *Generator) recordChangeset(id int64, day temporal.Day, points [][2]float64) {
	cs := osm.Changeset{
		ID:         id,
		CreatedAt:  day.Time().Add(time.Hour),
		ClosedAt:   day.Time().Add(2 * time.Hour),
		UID:        1 + g.rng.Int63n(500),
		NumChanges: len(points),
	}
	cs.User = fmt.Sprintf("mapper%03d", cs.UID)
	for i, pt := range points {
		lat, lon := pt[0], pt[1]
		if i == 0 {
			cs.MinLat, cs.MaxLat = lat, lat
			cs.MinLon, cs.MaxLon = lon, lon
			continue
		}
		if lat < cs.MinLat {
			cs.MinLat = lat
		}
		if lat > cs.MaxLat {
			cs.MaxLat = lat
		}
		if lon < cs.MinLon {
			cs.MinLon = lon
		}
		if lon > cs.MaxLon {
			cs.MaxLon = lon
		}
	}
	g.changesets = append(g.changesets, cs)
}

// locationOf returns the element's home point (nodes: their coordinates;
// ways/relations: the point they were created around).
func (g *Generator) locationOf(e *osm.Element) (lat, lon float64, ok bool) {
	if e.Type == osm.Node {
		return e.Lat, e.Lon, true
	}
	h, found := g.home[e.Key()]
	if !found {
		return 0, 0, false
	}
	return h[0], h[1], true
}

// Day returns the next day NextDay will generate.
func (g *Generator) Day() temporal.Day { return g.day }

// NextDay generates one day of world activity and returns its diff and
// changesets. Sessions cluster updates in one country, the way real mappers
// edit one area per changeset.
func (g *Generator) NextDay() *DayArtifacts {
	day := g.day
	g.day++

	n := g.cfg.UpdatesPerDay/2 + g.rng.Intn(g.cfg.UpdatesPerDay+1)
	art := &DayArtifacts{Day: day, Change: &osmxml.Change{}}
	csFrom := len(g.changesets)

	for n > 0 {
		session := 5 + g.rng.Intn(46)
		if session > n {
			session = n
		}
		n -= session
		csID := g.newChangesetID()
		// Session anchor: a country picked from the skewed distribution.
		country := pick(g.rng, g.countryCDF)
		rect := g.reg.RectOf(country)
		var pts [][2]float64
		addPt := func(e *osm.Element) {
			if lat, lon, ok := g.locationOf(e); ok {
				pts = append(pts, [2]float64{lat, lon})
			}
		}
		for i := 0; i < session; i++ {
			x := g.rng.Float64()
			switch {
			case x < 0.35 || g.nLive == 0:
				lat := rect.MinLat + g.rng.Float64()*(rect.MaxLat-rect.MinLat)
				lon := rect.MinLon + g.rng.Float64()*(rect.MaxLon-rect.MinLon)
				e := g.createElementAt(day, csID, lat, lon)
				addPt(e)
				art.Change.Items = append(art.Change.Items, osmxml.ChangeItem{Action: osmxml.Create, Element: e.Clone()})
			case x < 0.90:
				e := g.pickLive(country)
				nv := g.modifyElement(e, day, csID)
				addPt(nv)
				art.Change.Items = append(art.Change.Items, osmxml.ChangeItem{Action: osmxml.Modify, Element: nv.Clone()})
			default:
				e := g.pickLive(country)
				addPt(e) // capture location before the delete drops it
				nv := g.deleteElement(e, day, csID)
				art.Change.Items = append(art.Change.Items, osmxml.ChangeItem{Action: osmxml.Delete, Element: nv.Clone()})
			}
		}
		g.recordChangeset(csID, day, pts)
	}
	art.Changesets = append(art.Changesets, g.changesets[csFrom:]...)
	return art
}

// Changesets returns every changeset generated so far (the monthly crawler
// needs the full set to resolve way locations).
func (g *Generator) Changesets() []osm.Changeset { return g.changesets }

// WriteDayFiles writes one day's artifacts to dir using the naming scheme the
// file-based ingestion path consumes: <date>.osc (the OsmChange diff) and
// <date>.changesets.xml (the day's changeset metadata). It mirrors OSM's
// published daily diff + changeset files.
func (art *DayArtifacts) WriteDayFiles(dir string) error {
	date := art.Day.String()
	oscPath := filepath.Join(dir, date+".osc")
	f, err := os.Create(oscPath)
	if err != nil {
		return err
	}
	if err := osmxml.WriteChange(f, art.Change); err != nil {
		f.Close()
		return fmt.Errorf("osmgen: write %s: %w", oscPath, err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	csPath := filepath.Join(dir, date+".changesets.xml")
	f, err = os.Create(csPath)
	if err != nil {
		return err
	}
	if err := osmxml.WriteChangesets(f, art.Changesets); err != nil {
		f.Close()
		return fmt.Errorf("osmgen: write %s: %w", csPath, err)
	}
	return f.Close()
}

// WriteHistory writes a full-history dump of every element version generated
// so far whose timestamp falls in [from, to], sorted by (type, id, version) —
// the ordering the real planet full-history file uses and the monthly crawler
// relies on for streaming.
func (g *Generator) WriteHistory(w io.Writer, from, to temporal.Day) error {
	var sel []*osm.Element
	for _, e := range g.history {
		d := temporal.FromTime(e.Timestamp)
		if d >= from && d <= to {
			sel = append(sel, e)
		}
	}
	sort.Slice(sel, func(a, b int) bool {
		ea, eb := sel[a], sel[b]
		if ea.Type != eb.Type {
			return ea.Type < eb.Type
		}
		if ea.ID != eb.ID {
			return ea.ID < eb.ID
		}
		return ea.Version < eb.Version
	})
	hw, err := osmxml.NewHistoryWriter(w)
	if err != nil {
		return err
	}
	for _, e := range sel {
		if err := hw.Add(e); err != nil {
			return err
		}
	}
	return hw.Close()
}

// WriteHistoryFile writes a full-history dump covering [from, to] into dir as
// history.osm and returns its path.
func (g *Generator) WriteHistoryFile(dir string, from, to temporal.Day) (string, error) {
	path := filepath.Join(dir, "history.osm")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := g.WriteHistory(f, from, to); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// HistoryLen returns the number of element versions generated so far.
func (g *Generator) HistoryLen() int { return len(g.history) }

// LiveCount returns the number of live (not deleted) elements.
func (g *Generator) LiveCount() int { return g.nLive }

// NetworkSizes returns the live road-network size per country catalog value
// (leaf countries and zone rollups), the denominator of the paper's
// Percentage(*) queries.
func (g *Generator) NetworkSizes() map[int]uint64 {
	sizes := make(map[int]uint64)
	for k := range g.live {
		c := g.countryOf[k]
		if c < 0 {
			continue
		}
		h := g.home[k]
		sizes[c]++
		for _, z := range g.reg.ZonesOf(c, h[0], h[1]) {
			sizes[z]++
		}
	}
	return sizes
}
