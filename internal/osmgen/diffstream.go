package osmgen

// DiffStream slices each generated day's OsmChange file into sub-daily
// replication diffs, the way planet.osm.org publishes minutely/hourly
// sequences alongside the daily ones. The live-ingest pipeline consumes these
// instead of whole-day artifacts, so the serving index can move many times a
// day. The stream is a pure function of (Config, ChunksPerDay): items land in
// the chunk covering their element timestamp's second of day, changesets ride
// in the chunk of their first referencing item, and empty chunks are still
// emitted so the replication cadence is uniform. Re-running the same seed
// reproduces the byte-identical sequence, which is what the golden-file test
// pins down.

import (
	"rased/internal/osm"
	"rased/internal/osmxml"
	"rased/internal/temporal"
	"time"
)

// Diff is one sub-daily replication unit.
type Diff struct {
	Day        temporal.Day
	Seq        int  // chunk index within the day, 0-based
	Of         int  // chunks per day
	Last       bool // final chunk of the day
	Change     *osmxml.Change
	Changesets []osm.Changeset
}

// DiffStream emits a day's worth of edits as Of consecutive diffs per day.
// Not safe for concurrent use (it drives a Generator).
type DiffStream struct {
	gen    *Generator
	chunks int
	queue  []*Diff // remaining chunks of the current day
}

// NewDiffStream returns a stream over a fresh world built from cfg, cutting
// each day into chunksPerDay diffs (minimum 1).
func NewDiffStream(cfg Config, chunksPerDay int) *DiffStream {
	if chunksPerDay < 1 {
		chunksPerDay = 1
	}
	return &DiffStream{gen: New(cfg), chunks: chunksPerDay}
}

// Generator exposes the underlying world (network sizes, changeset history).
func (s *DiffStream) Generator() *Generator { return s.gen }

// Next returns the next diff in the replication sequence, generating the next
// day on demand. The sequence is infinite; every call succeeds.
func (s *DiffStream) Next() *Diff {
	if len(s.queue) == 0 {
		s.queue = s.sliceDay(s.gen.NextDay())
	}
	d := s.queue[0]
	s.queue = s.queue[1:]
	return d
}

// sliceDay cuts one day's artifacts into the per-chunk diffs.
func (s *DiffStream) sliceDay(art *DayArtifacts) []*Diff {
	out := make([]*Diff, s.chunks)
	for i := range out {
		out[i] = &Diff{
			Day:    art.Day,
			Seq:    i,
			Of:     s.chunks,
			Last:   i == s.chunks-1,
			Change: &osmxml.Change{},
		}
	}
	dayStart := art.Day.Time()
	csChunk := make(map[int64]int, len(art.Changesets))
	for _, it := range art.Change.Items {
		k := s.chunkOf(dayStart, it.Element.Timestamp)
		out[k].Change.Items = append(out[k].Change.Items, it)
		if prev, seen := csChunk[it.Element.ChangesetID]; !seen || k < prev {
			csChunk[it.Element.ChangesetID] = k
		}
	}
	// A changeset travels with the earliest chunk holding any of its items so
	// every chunk is self-locating: crawl's changeset-centroid fallback never
	// needs a changeset from a later chunk. Changesets referenced by no
	// surviving item default to chunk 0.
	for _, cs := range art.Changesets {
		out[csChunk[cs.ID]].Changesets = append(out[csChunk[cs.ID]].Changesets, cs)
	}
	return out
}

// chunkOf maps an element timestamp to its chunk by second of day, clamped so
// a timestamp outside the day (which the generator never produces) still
// lands in a valid chunk.
func (s *DiffStream) chunkOf(dayStart, ts time.Time) int {
	sec := int(ts.Sub(dayStart) / time.Second)
	if sec < 0 {
		sec = 0
	}
	if sec > 86399 {
		sec = 86399
	}
	return sec * s.chunks / 86400
}
