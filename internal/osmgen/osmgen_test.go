package osmgen

import (
	"bytes"
	"io"
	"testing"
	"time"

	"rased/internal/geo"
	"rased/internal/osm"
	"rased/internal/osmxml"
	"rased/internal/roads"
	"rased/internal/temporal"
)

func smallConfig() Config {
	return Config{
		Seed:          7,
		Start:         temporal.NewDay(2021, time.March, 1),
		UpdatesPerDay: 120,
		SeedElements:  300,
	}
}

func TestDeterminism(t *testing.T) {
	g1 := New(smallConfig())
	g2 := New(smallConfig())
	for i := 0; i < 3; i++ {
		a1 := g1.NextDay()
		a2 := g2.NextDay()
		if len(a1.Change.Items) != len(a2.Change.Items) {
			t.Fatalf("day %d: item counts differ (%d vs %d)", i, len(a1.Change.Items), len(a2.Change.Items))
		}
		for j := range a1.Change.Items {
			e1, e2 := a1.Change.Items[j].Element, a2.Change.Items[j].Element
			if e1.Key() != e2.Key() || e1.Version != e2.Version || !e1.Timestamp.Equal(e2.Timestamp) {
				t.Fatalf("day %d item %d differ: %+v vs %+v", i, j, e1, e2)
			}
		}
		if len(a1.Changesets) != len(a2.Changesets) {
			t.Fatalf("day %d: changeset counts differ", i)
		}
	}
}

func TestDayArtifactsWellFormed(t *testing.T) {
	g := New(smallConfig())
	art := g.NextDay()
	if art.Day != smallConfig().Start {
		t.Errorf("day = %v", art.Day)
	}
	if len(art.Change.Items) == 0 {
		t.Fatal("empty day")
	}
	csIDs := make(map[int64]bool)
	for _, cs := range art.Changesets {
		csIDs[cs.ID] = true
		if cs.NumChanges == 0 {
			t.Error("changeset with zero changes")
		}
		if cs.MinLat > cs.MaxLat || cs.MinLon > cs.MaxLon {
			t.Errorf("inverted bbox: %+v", cs)
		}
	}
	for _, it := range art.Change.Items {
		e := it.Element
		if !csIDs[e.ChangesetID] {
			t.Errorf("element %v references changeset %d not in day artifacts", e.Key(), e.ChangesetID)
		}
		if temporal.FromTime(e.Timestamp) != art.Day {
			t.Errorf("element timestamp %v outside day %v", e.Timestamp, art.Day)
		}
		if !roads.IsRoadElement(e.Tags) && it.Action != osmxml.Delete {
			t.Errorf("non-road element generated: %v %v", e.Key(), e.Tags)
		}
		switch it.Action {
		case osmxml.Create:
			if e.Version != 1 {
				t.Errorf("created element has version %d", e.Version)
			}
			if !e.Visible {
				t.Error("created element invisible")
			}
		case osmxml.Modify:
			if e.Version < 2 {
				t.Errorf("modified element has version %d", e.Version)
			}
		case osmxml.Delete:
			if e.Visible {
				t.Error("deleted element still visible")
			}
		}
	}
}

func TestChangeXMLRoundTrips(t *testing.T) {
	g := New(smallConfig())
	art := g.NextDay()
	var buf bytes.Buffer
	if err := osmxml.WriteChange(&buf, art.Change); err != nil {
		t.Fatal(err)
	}
	got, err := osmxml.ReadChange(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Items) != len(art.Change.Items) {
		t.Errorf("round trip items = %d, want %d", len(got.Items), len(art.Change.Items))
	}
	var cbuf bytes.Buffer
	if err := osmxml.WriteChangesets(&cbuf, art.Changesets); err != nil {
		t.Fatal(err)
	}
	sets, err := osmxml.ReadChangesets(&cbuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != len(art.Changesets) {
		t.Errorf("round trip changesets = %d, want %d", len(sets), len(art.Changesets))
	}
}

func TestHistoryConsistency(t *testing.T) {
	g := New(smallConfig())
	for i := 0; i < 5; i++ {
		g.NextDay()
	}
	var buf bytes.Buffer
	start := smallConfig().Start
	if err := g.WriteHistory(&buf, start-1, start+10); err != nil {
		t.Fatal(err)
	}
	hr := osmxml.NewHistoryReader(&buf)
	versions := make(map[osm.Key][]int)
	var prev *osm.Element
	n := 0
	for {
		e, err := hr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
		if prev != nil {
			// Sorted by (type, id, version).
			if e.Type < prev.Type ||
				(e.Type == prev.Type && e.ID < prev.ID) ||
				(e.Type == prev.Type && e.ID == prev.ID && e.Version <= prev.Version) {
				t.Fatalf("history not sorted: %v v%d after %v v%d", e.Key(), e.Version, prev.Key(), prev.Version)
			}
		}
		versions[e.Key()] = append(versions[e.Key()], e.Version)
		prev = e
	}
	if n != g.HistoryLen() {
		t.Errorf("history dump has %d versions, generator made %d", n, g.HistoryLen())
	}
	// Versions per element are consecutive starting at 1.
	for k, vs := range versions {
		for i, v := range vs {
			if v != i+1 {
				t.Fatalf("element %v versions %v not consecutive", k, vs)
			}
		}
	}
}

func TestCountrySkew(t *testing.T) {
	g := New(Config{Seed: 3, Start: temporal.NewDay(2021, time.January, 1), UpdatesPerDay: 2000, SeedElements: 500})
	counts := make(map[int]int)
	reg := geo.Default()
	for i := 0; i < 5; i++ {
		art := g.NextDay()
		byCS := make(map[int64]osm.Changeset)
		for _, cs := range art.Changesets {
			byCS[cs.ID] = cs
		}
		for _, it := range art.Change.Items {
			e := it.Element
			var lat, lon float64
			if e.Type == osm.Node {
				lat, lon = e.Lat, e.Lon
			} else {
				cs := byCS[e.ChangesetID]
				lat, lon = cs.Center()
			}
			if c, ok := reg.Resolve(lat, lon); ok {
				counts[c]++
			}
		}
	}
	if len(counts) < 20 {
		t.Errorf("only %d countries active, want broad coverage", len(counts))
	}
	// Skew: the most active country should dominate the median country.
	max := 0
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	if max < 200 {
		t.Errorf("top country has %d updates; distribution looks flat", max)
	}
}

func TestNetworkSizes(t *testing.T) {
	g := New(smallConfig())
	g.NextDay()
	sizes := g.NetworkSizes()
	reg := geo.Default()
	var leafTotal uint64
	for c, n := range sizes {
		if reg.IsLeafCountry(c) {
			leafTotal += n
		}
	}
	if int(leafTotal) != g.LiveCount() {
		t.Errorf("leaf network sizes sum to %d, live count is %d", leafTotal, g.LiveCount())
	}
	if sizes[reg.WorldValue()] != leafTotal {
		t.Errorf("world zone size %d != leaf total %d", sizes[reg.WorldValue()], leafTotal)
	}
}

func TestLiveSetShrinksOnDelete(t *testing.T) {
	g := New(smallConfig())
	before := g.LiveCount()
	if before != smallConfig().SeedElements {
		t.Fatalf("seed live = %d", before)
	}
	var creates, deletes int
	for i := 0; i < 10; i++ {
		art := g.NextDay()
		for _, it := range art.Change.Items {
			switch it.Action {
			case osmxml.Create:
				creates++
			case osmxml.Delete:
				deletes++
			}
		}
	}
	if got := g.LiveCount(); got != before+creates-deletes {
		t.Errorf("live = %d, want %d + %d - %d", got, before, creates, deletes)
	}
	if deletes == 0 {
		t.Error("no deletions generated in 10 days")
	}
}

func TestChangesetsAccumulate(t *testing.T) {
	g := New(smallConfig())
	a1 := g.NextDay()
	a2 := g.NextDay()
	all := g.Changesets()
	// Seed changeset + day changesets.
	if len(all) != 1+len(a1.Changesets)+len(a2.Changesets) {
		t.Errorf("changesets = %d, want %d", len(all), 1+len(a1.Changesets)+len(a2.Changesets))
	}
	seen := make(map[int64]bool)
	for _, cs := range all {
		if seen[cs.ID] {
			t.Errorf("duplicate changeset id %d", cs.ID)
		}
		seen[cs.ID] = true
	}
}
