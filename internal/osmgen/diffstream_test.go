package osmgen

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"rased/internal/osmxml"
)

// streamConfig is the fixed configuration the golden file pins down.
func streamConfig() Config {
	cfg := DefaultConfig()
	cfg.Seed = 42
	cfg.UpdatesPerDay = 120
	cfg.SeedElements = 600
	return cfg
}

// renderDiff serializes one diff the way the golden file stores it.
func renderDiff(t *testing.T, d *Diff) []byte {
	t.Helper()
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "== day=%v seq=%d/%d last=%v items=%d changesets=%d\n",
		d.Day, d.Seq, d.Of, d.Last, len(d.Change.Items), len(d.Changesets))
	if err := osmxml.WriteChange(&buf, d.Change); err != nil {
		t.Fatal(err)
	}
	if err := osmxml.WriteChangesets(&buf, d.Changesets); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDiffStreamGolden pins the emitter's byte-exact output: live-ingest
// tests and benches replay the same sequences, so any unintended change to
// the generator or the slicer shows up here first. Regenerate with
// OSMGEN_REGEN_GOLDEN=1 go test ./internal/osmgen -run DiffStreamGolden.
func TestDiffStreamGolden(t *testing.T) {
	s := NewDiffStream(streamConfig(), 4)
	h := sha256.New()
	// Two full days: exercises day-boundary chunking, not just one day.
	for i := 0; i < 8; i++ {
		h.Write(renderDiff(t, s.Next()))
	}
	got := hex.EncodeToString(h.Sum(nil))

	golden := filepath.Join("testdata", "diffstream.golden")
	if os.Getenv("OSMGEN_REGEN_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (regenerate with OSMGEN_REGEN_GOLDEN=1): %v", err)
	}
	if got != string(bytes.TrimSpace(want)) {
		t.Fatalf("diff stream diverged from golden file:\n got %s\nwant %s", got, bytes.TrimSpace(want))
	}
}

// TestDiffStreamDeterminism: two independent streams with the same seed emit
// identical sequences.
func TestDiffStreamDeterminism(t *testing.T) {
	a, b := NewDiffStream(streamConfig(), 6), NewDiffStream(streamConfig(), 6)
	for i := 0; i < 12; i++ {
		da, db := a.Next(), b.Next()
		if !bytes.Equal(renderDiff(t, da), renderDiff(t, db)) {
			t.Fatalf("streams diverged at diff %d", i)
		}
	}
}

// TestDiffStreamPartitionsDay: the union of a day's chunks is exactly the
// whole-day artifact — same items, same changesets — so folding chunk by
// chunk must reach the same day cube as batch ingest.
func TestDiffStreamPartitionsDay(t *testing.T) {
	const chunks = 5
	s := NewDiffStream(streamConfig(), chunks)
	whole := New(streamConfig()) // parallel world, same seed
	for day := 0; day < 3; day++ {
		art := whole.NextDay()
		items, sets := 0, 0
		for i := 0; i < chunks; i++ {
			d := s.Next()
			if d.Day != art.Day {
				t.Fatalf("chunk day %v, want %v", d.Day, art.Day)
			}
			if d.Seq != i || d.Of != chunks {
				t.Fatalf("chunk seq %d/%d, want %d/%d", d.Seq, d.Of, i, chunks)
			}
			if d.Last != (i == chunks-1) {
				t.Fatalf("chunk %d Last=%v", i, d.Last)
			}
			items += len(d.Change.Items)
			sets += len(d.Changesets)
		}
		if items != len(art.Change.Items) {
			t.Fatalf("day %v: chunks hold %d items, day artifact has %d", art.Day, items, len(art.Change.Items))
		}
		if sets != len(art.Changesets) {
			t.Fatalf("day %v: chunks hold %d changesets, day artifact has %d", art.Day, sets, len(art.Changesets))
		}
	}
}
