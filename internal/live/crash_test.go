package live

// Crash-mid-fold recovery: a torn page write during a live publish (the
// process dies halfway through staging an epoch) must recover to the last
// durable epoch exactly. The test reuses the PR 5 torn-write harness — a
// faultstore slotted under the index via WithStoreWrapper — and checks the
// recovery invariant by full scan: every period in the reopened index equals
// a fault-free oracle replayed to the recovered epoch's fold count.

import (
	"errors"
	"testing"
	"time"

	"rased/internal/faultstore"
	"rased/internal/osmgen"
	"rased/internal/pagestore"
	"rased/internal/temporal"
	"rased/internal/tindex"
)

// foldN drives n chunks of a fresh seeded stream through pipe, failing the
// test on any fold error.
func foldN(t *testing.T, pipe *Pipeline, stream *osmgen.DiffStream, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		d := stream.Next()
		c := &Chunk{Day: d.Day, Seq: d.Seq, Of: d.Of, Last: d.Last,
			Change: d.Change, Changesets: d.Changesets, Emitted: time.Now()}
		if err := pipe.FoldChunk(c); err != nil {
			t.Fatalf("fold %d: %v", i, err)
		}
	}
}

func TestCrashMidFoldRecoversToDurableEpoch(t *testing.T) {
	const chunks, cleanFolds = 4, 11
	s := testSchema()
	dir := t.TempDir()

	var fs *faultstore.Store
	ix, err := tindex.Create(dir, s, 4, tindex.WithStoreWrapper(func(p pagestore.Pager) pagestore.Pager {
		fs = faultstore.New(p, 99)
		return fs
	}))
	if err != nil {
		t.Fatal(err)
	}
	pipe := NewPipeline(ix, Config{MaxCountry: len(s.Countries), MaxRoad: len(s.RoadTypes), CheckpointEvery: 3})
	stream := osmgen.NewDiffStream(testGenConfig(), chunks)
	foldN(t, pipe, stream, cleanFolds)

	// Arm the torn write: the next page write dies halfway. Keep folding
	// until the publish hits it — the pipeline must surface the failure, and
	// whatever it had already made durable must survive the crash.
	fs.AddRule(faultstore.Rule{Op: faultstore.OpWrite, Kind: faultstore.KindTorn, Page: -1, Count: 1})
	crashed := false
	for i := 0; i < 2*chunks && !crashed; i++ {
		d := stream.Next()
		c := &Chunk{Day: d.Day, Seq: d.Seq, Of: d.Of, Last: d.Last,
			Change: d.Change, Changesets: d.Changesets, Emitted: time.Now()}
		if err := pipe.FoldChunk(c); err != nil {
			if !errors.Is(err, faultstore.ErrTornWrite) {
				t.Fatalf("fold failed with %v, want torn-write", err)
			}
			crashed = true
		}
	}
	if !crashed {
		t.Fatal("torn write never fired")
	}
	// Simulated crash: the faulty index is abandoned WITHOUT Close (Close
	// syncs, which would make the crash state durable and defeat the test).

	re, err := tindex.Open(dir, s)
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer re.Close()
	durable := re.Epoch()
	if durable == 0 || durable > uint64(cleanFolds)+uint64(chunks) {
		t.Fatalf("recovered epoch %d outside the plausible window", durable)
	}

	// Full-scan the recovered index: every reachable page must verify. A
	// torn scratch page may exist in the file, but the durable directory must
	// never reference it.
	if _, err := re.Scrub(); err != nil {
		t.Fatalf("recovered index fails scrub: %v", err)
	}

	// Fault-free oracle replayed to the recovered epoch: one fold = one
	// epoch, so the durable epoch is the durable fold count.
	oix, err := tindex.Create(t.TempDir(), s, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer oix.Close()
	opipe := NewPipeline(oix, Config{MaxCountry: len(s.Countries), MaxRoad: len(s.RoadTypes), CheckpointEvery: 3})
	foldN(t, opipe, osmgen.NewDiffStream(testGenConfig(), chunks), int(durable))

	lo, hi, ok := re.Coverage()
	olo, ohi, ook := oix.Coverage()
	if !ok || !ook || lo != olo || hi != ohi {
		t.Fatalf("recovered coverage [%v,%v,%v] != oracle [%v,%v,%v]", lo, hi, ok, olo, ohi, ook)
	}
	for lvl := temporal.Daily; lvl <= temporal.Yearly; lvl++ {
		want := oix.Periods(lvl)
		got := re.Periods(lvl)
		if len(got) != len(want) {
			t.Fatalf("level %v: recovered %d periods, oracle %d", lvl, len(got), len(want))
		}
		for _, per := range want {
			a, err := re.Fetch(per)
			if err != nil {
				t.Fatalf("recovered fetch %v: %v", per, err)
			}
			b, err := oix.Fetch(per)
			if err != nil {
				t.Fatalf("oracle fetch %v: %v", per, err)
			}
			if !a.Equal(b) {
				t.Fatalf("recovered cube %v diverges from oracle (total %d vs %d)", per, a.Total(), b.Total())
			}
		}
	}
}
