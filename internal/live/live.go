// Package live is the continuous ingest subsystem: it consumes sub-daily
// OsmChange replication diffs, classifies them through the same crawl path as
// batch ingest, folds the records into the current day's 4-D cube, and
// publishes each fold to the serving index as a new copy-on-write epoch
// (tindex.PublishEpoch), so a running dashboard's counters move within
// seconds of an edit instead of waiting for the next batch rebuild.
//
// Ownership and immutability rules (see DESIGN.md §10):
//
//   - The pipeline is the index's only writer while live mode is on. The
//     current day's accumulating cube (cur) is private to the pipeline;
//     readers only ever see the immutable snapshots published as epochs.
//   - Every publish goes through PublishEpoch: the fold never writes a page
//     the directory references. Closing rollups (week/month/year containing
//     "today") are derived on the fold path and published in the same epoch
//     as the day's final fold, so readers never see a parent that disagrees
//     with its children.
//   - A checkpoint (Index.Sync) every CheckpointEvery folds and at each day
//     close bounds replay loss: a crash mid-fold recovers to the last durable
//     epoch exactly (the pages a synced meta references are never recycled).
package live

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"rased/internal/core"
	"rased/internal/crawl"
	"rased/internal/cube"
	"rased/internal/geo"
	"rased/internal/obs"
	"rased/internal/osm"
	"rased/internal/osmgen"
	"rased/internal/osmxml"
	"rased/internal/temporal"
	"rased/internal/tindex"
	"rased/internal/update"
)

// Chunk is one replication unit entering the pipeline. Emitted is when the
// source produced it; ingest lag is measured from Emitted to the moment the
// chunk's epoch is published and visible to queries.
type Chunk struct {
	Day        temporal.Day
	Seq        int
	Of         int
	Last       bool
	Change     *osmxml.Change
	Changesets []osm.Changeset
	Emitted    time.Time
}

// Source yields replication chunks in order. Next blocks until the next
// chunk is due (honoring ctx) and returns io.EOF when the stream ends.
type Source interface {
	Next(ctx context.Context) (*Chunk, error)
}

// SimSource adapts the deterministic osmgen diff stream into a paced Source:
// one chunk per Interval, stamped at emission, up to Limit chunks (0 =
// unbounded). It simulates polling a replication endpoint.
type SimSource struct {
	stream   *osmgen.DiffStream
	interval time.Duration
	limit    int
	emitted  int
}

// NewSimSource returns a source emitting one chunk of stream every interval.
func NewSimSource(stream *osmgen.DiffStream, interval time.Duration, limit int) *SimSource {
	return &SimSource{stream: stream, interval: interval, limit: limit}
}

// Next waits out the cadence and emits the next chunk.
func (s *SimSource) Next(ctx context.Context) (*Chunk, error) {
	if s.limit > 0 && s.emitted >= s.limit {
		return nil, io.EOF
	}
	if s.interval > 0 {
		t := time.NewTimer(s.interval)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		}
	}
	d := s.stream.Next()
	s.emitted++
	return &Chunk{
		Day:        d.Day,
		Seq:        d.Seq,
		Of:         d.Of,
		Last:       d.Last,
		Change:     d.Change,
		Changesets: d.Changesets,
		Emitted:    time.Now(),
	}, nil
}

// Metrics are the pipeline's observability instruments.
type Metrics struct {
	Epoch     *obs.GaugeFunc
	Folds     *obs.Counter
	IngestLag *obs.Histogram
}

// All returns the instruments for registry wiring.
func (m *Metrics) All() []obs.Metric {
	return []obs.Metric{m.Epoch, m.Folds, m.IngestLag}
}

// lagBounds cover the interesting range: sub-10ms folds on an idle box up to
// the 5 s acceptance ceiling and beyond.
var lagBounds = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Config parameterizes a Pipeline.
type Config struct {
	// MaxCountry and MaxRoad bound the records admitted to the cube schema,
	// exactly as batch ingest's schema filter does.
	MaxCountry, MaxRoad int
	// CheckpointEvery syncs the index every N folds (day closes always
	// sync). 0 means the default of 16.
	CheckpointEvery int
	// CompressClosed compacts each day — and the rollups it closes — into
	// the index's compressed cold tier right after the day-close checkpoint.
	// A closed period is immutable history on the fold path, so compressing
	// it costs one re-encode per period while the footprint win compounds
	// daily. Off by default: batch-style deployments may prefer to compact
	// on their own schedule (tindex.CompactBefore).
	CompressClosed bool
	// Engine, when set, is told which periods each epoch republished so its
	// caches refuse stale hits. Nil is allowed (index-only tests).
	Engine *core.Engine
}

// Status is a point-in-time snapshot of the pipeline, served by /healthz.
type Status struct {
	Epoch   uint64  `json:"epoch"`
	Day     string  `json:"day,omitempty"` // day currently being folded
	Folds   int64   `json:"folds"`
	LagSecs float64 `json:"last_lag_seconds"`
}

// Pipeline folds replication chunks into a live index. Run drives it; all
// exported methods are safe to call concurrently with Run.
type Pipeline struct {
	ix    *tindex.Index
	ing   *core.Ingestor
	cfg   Config
	met   *Metrics
	csIdx crawl.ChangesetIndex
	reg   *geo.Registry

	cur       *cube.Cube   // accumulating cube for day; private to the fold path
	day       temporal.Day // day cur covers (valid when cur != nil)
	sinceCkpt int

	mu     sync.Mutex
	status Status
}

// NewPipeline wires a pipeline over a live index. EnableLive is switched on
// here: from this point the index pins epochs around reads and PublishEpoch
// may recycle retired pages.
func NewPipeline(ix *tindex.Index, cfg Config) *Pipeline {
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 16
	}
	ix.EnableLive()
	p := &Pipeline{
		ix:    ix,
		ing:   core.NewIngestor(ix),
		cfg:   cfg,
		csIdx: crawl.ChangesetIndex{},
		reg:   geo.Default(),
	}
	p.met = &Metrics{
		Epoch:     obs.NewGaugeFunc("rased_live_epoch", "Currently published live-ingest epoch.", func() float64 { return float64(ix.Epoch()) }),
		Folds:     obs.NewCounter("rased_live_folds_total", "Replication chunks folded into the live index."),
		IngestLag: obs.NewHistogram("rased_live_ingest_lag_seconds", "Latency from chunk emission to its epoch being query-visible.", lagBounds),
	}
	return p
}

// Metrics returns the pipeline's instruments for registry wiring.
func (p *Pipeline) Metrics() *Metrics { return p.met }

// Status returns the current pipeline snapshot.
func (p *Pipeline) Status() Status {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.status
	s.Epoch = p.ix.Epoch()
	return s
}

// Run consumes src until it ends (io.EOF), ctx is canceled, or a fold fails.
// A final checkpoint runs on clean shutdown so the last published epoch is
// durable.
func (p *Pipeline) Run(ctx context.Context, src Source) error {
	for {
		c, err := src.Next(ctx)
		if errors.Is(err, io.EOF) {
			return p.checkpoint()
		}
		if err != nil {
			if ctx.Err() != nil {
				// Canceled: persist what was published before leaving.
				if serr := p.checkpoint(); serr != nil {
					return serr
				}
			}
			return err
		}
		if err := p.FoldChunkCtx(ctx, c); err != nil {
			return err
		}
	}
}

// FoldChunk classifies one chunk, folds it into the current day's cube, and
// publishes the result as a new epoch. On the day's last chunk the closing
// week/month/year rollups are derived here — on the fold path, not the read
// path — and published atomically with the final day image, followed by a
// mandatory checkpoint (and, with CompressClosed, compaction of the closed
// periods into the cold tier).
func (p *Pipeline) FoldChunk(c *Chunk) error {
	return p.FoldChunkCtx(context.Background(), c)
}

// FoldChunkCtx is FoldChunk honoring a context.
func (p *Pipeline) FoldChunkCtx(ctx context.Context, c *Chunk) error {
	if p.cur != nil && c.Day != p.day {
		return fmt.Errorf("live: chunk for %v arrived while folding %v", c.Day, p.day)
	}
	if p.cur == nil {
		if err := p.ix.Sync(); err != nil { // checkpoint the previous day before opening a new one
			return err
		}
		p.cur = cube.New(p.ix.Schema())
		p.day = c.Day
	}
	p.csIdx.Add(c.Changesets)
	recs, _, err := crawl.Daily(c.Change, p.csIdx, p.reg)
	if err != nil {
		return fmt.Errorf("live: crawl day %v chunk %d: %w", c.Day, c.Seq, err)
	}
	recs = p.inSchema(recs)
	chunkCube, err := p.ing.BuildDayCube(c.Day, recs)
	if err != nil {
		return fmt.Errorf("live: fold day %v chunk %d: %w", c.Day, c.Seq, err)
	}
	if err := p.cur.Merge(chunkCube); err != nil {
		return fmt.Errorf("live: fold day %v chunk %d: %w", c.Day, c.Seq, err)
	}

	// Publish a snapshot of the accumulating cube. The published image must
	// be private to the epoch (readers hold it after the next fold mutates
	// cur), hence the clone.
	updates := map[temporal.Period]*cube.Cube{temporal.DayPeriod(c.Day): p.cur.Clone()}
	if c.Last {
		if err := p.closingRollups(c.Day, updates); err != nil {
			return err
		}
	}
	epoch, err := p.ix.PublishEpoch(updates)
	if err != nil {
		return fmt.Errorf("live: publish day %v chunk %d: %w", c.Day, c.Seq, err)
	}
	if p.cfg.Engine != nil {
		ps := make([]temporal.Period, 0, len(updates))
		for up := range updates {
			ps = append(ps, up)
		}
		p.cfg.Engine.MarkLiveUpdate(epoch, ps...)
	}

	// The fold is query-visible from here; everything after is bookkeeping.
	lag := time.Since(c.Emitted)
	p.met.Folds.Inc()
	p.met.IngestLag.Observe(lag)
	p.mu.Lock()
	p.status.Day = c.Day.String()
	p.status.Folds++
	p.status.LagSecs = lag.Seconds()
	p.mu.Unlock()

	p.sinceCkpt++
	if c.Last {
		p.cur = nil
		if err := p.checkpoint(); err != nil {
			return err
		}
		if p.cfg.CompressClosed {
			// The day and its closing rollups are immutable from here: fold
			// them into the cold tier. The compactor's staleness check makes
			// this safe even if a republish were to race it.
			ps := make([]temporal.Period, 0, len(updates))
			for up := range updates {
				ps = append(ps, up)
			}
			if _, err := p.ix.CompactPeriods(ctx, ps); err != nil {
				return fmt.Errorf("live: compress closed %v: %w", c.Day, err)
			}
		}
		return nil
	}
	if p.sinceCkpt >= p.cfg.CheckpointEvery {
		return p.checkpoint()
	}
	return nil
}

// closingRollups derives the week/month/year cubes closed by day d from
// their children — prior days via index fetches, today from the in-memory
// cube — and adds them to the publish batch. Mirrors tindex.maybeRollup's
// coverage rule: a parent is only built when the index fully covers it.
func (p *Pipeline) closingRollups(d temporal.Day, updates map[temporal.Period]*cube.Cube) error {
	minDay, _, ok := p.ix.Coverage()
	if !ok || d < minDay {
		minDay = d
	}
	add := func(parent temporal.Period) error {
		if parent.Start() < minDay {
			return nil
		}
		sum := cube.New(p.ix.Schema())
		for _, child := range parent.Children() {
			var cb *cube.Cube
			if child == temporal.DayPeriod(d) {
				cb = updates[child] // today's final image, not yet on disk
			} else if p.ix.HasCube(child) {
				var err error
				cb, err = p.ix.Fetch(child)
				if err != nil {
					return fmt.Errorf("live: rollup %v: %w", parent, err)
				}
			} else if child.Level == temporal.Daily {
				return fmt.Errorf("live: rollup %v: missing child %v", parent, child)
			} else {
				// A mid-hierarchy child (week of a month) may be absent when
				// the level is disabled; sum its days instead.
				if err := sumDays(p, child, sum, d, updates); err != nil {
					return err
				}
				continue
			}
			if err := sum.Merge(cb); err != nil {
				return fmt.Errorf("live: rollup %v: %w", parent, err)
			}
		}
		updates[parent] = sum
		return nil
	}
	if p.ix.Levels() >= 2 && temporal.IsEndOfWeek(d) {
		if w, ok := temporal.WeekPeriod(d); ok {
			if err := add(w); err != nil {
				return err
			}
		}
	}
	if p.ix.Levels() >= 3 && temporal.IsEndOfMonth(d) {
		if err := add(temporal.MonthPeriod(d)); err != nil {
			return err
		}
	}
	if p.ix.Levels() >= 4 && temporal.IsEndOfYear(d) {
		if err := add(temporal.YearPeriod(d)); err != nil {
			return err
		}
	}
	return nil
}

// sumDays merges every day under period p into sum, taking today's image
// from the publish batch.
func sumDays(pl *Pipeline, p temporal.Period, sum *cube.Cube, today temporal.Day, updates map[temporal.Period]*cube.Cube) error {
	for d := p.Start(); d <= p.End(); d++ {
		dp := temporal.DayPeriod(d)
		var cb *cube.Cube
		if d == today {
			cb = updates[dp]
		} else {
			var err error
			cb, err = pl.ix.Fetch(dp)
			if err != nil {
				return fmt.Errorf("live: rollup %v: %w", p, err)
			}
		}
		if err := sum.Merge(cb); err != nil {
			return fmt.Errorf("live: rollup %v: %w", p, err)
		}
	}
	return nil
}

// checkpoint syncs the index, making every published epoch durable.
func (p *Pipeline) checkpoint() error {
	p.sinceCkpt = 0
	if err := p.ix.Sync(); err != nil {
		return fmt.Errorf("live: checkpoint: %w", err)
	}
	return nil
}

// inSchema drops records outside the cube's country/road bounds, mirroring
// the batch pipeline's filter so live and batch ingest agree.
func (p *Pipeline) inSchema(recs []update.Record) []update.Record {
	out := recs[:0]
	for _, r := range recs {
		if int(r.Country) < p.cfg.MaxCountry && int(r.RoadType) < p.cfg.MaxRoad {
			out = append(out, r)
		}
	}
	return out
}
