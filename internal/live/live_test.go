package live

import (
	"context"
	"testing"
	"time"

	"rased/internal/core"
	"rased/internal/crawl"
	"rased/internal/cube"
	"rased/internal/geo"
	"rased/internal/osmgen"
	"rased/internal/osmxml"
	"rased/internal/temporal"
	"rased/internal/tindex"
)

func testGenConfig() osmgen.Config {
	cfg := osmgen.DefaultConfig()
	cfg.Seed = 7
	cfg.UpdatesPerDay = 150
	cfg.SeedElements = 800
	return cfg
}

func testSchema() *cube.Schema {
	de, dr := 24, 8
	_ = de
	return cube.ScaledSchema(24, dr)
}

// buildOracle batch-ingests days whole-day artifacts the classic way and
// returns the resulting index.
func buildOracle(t *testing.T, dir string, days int) *tindex.Index {
	t.Helper()
	s := testSchema()
	ix, err := tindex.Create(dir, s, 4)
	if err != nil {
		t.Fatal(err)
	}
	ing := core.NewIngestor(ix)
	gen := osmgen.New(testGenConfig())
	csIdx := crawl.ChangesetIndex{}
	reg := geo.Default()
	for i := 0; i < days; i++ {
		art := gen.NextDay()
		csIdx.Add(art.Changesets)
		recs, _, err := crawl.Daily(art.Change, csIdx, reg)
		if err != nil {
			t.Fatal(err)
		}
		kept := recs[:0]
		for _, r := range recs {
			if int(r.Country) < len(s.Countries) && int(r.RoadType) < len(s.RoadTypes) {
				kept = append(kept, r)
			}
		}
		if err := ing.AppendDay(art.Day, kept); err != nil {
			t.Fatal(err)
		}
	}
	return ix
}

// TestFoldMatchesBatchOracle: folding a diff stream chunk by chunk must land
// the index in exactly the state batch ingest reaches from the same world —
// every day cube and every closed rollup equal, coverage equal. 16 days spans
// two week closes, so the fold-path rollup derivation is exercised.
func TestFoldMatchesBatchOracle(t *testing.T) {
	const days, chunks = 16, 4
	oracle := buildOracle(t, t.TempDir(), days)
	defer oracle.Close()

	s := testSchema()
	ix, err := tindex.Create(t.TempDir(), s, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	p := NewPipeline(ix, Config{MaxCountry: len(s.Countries), MaxRoad: len(s.RoadTypes), CheckpointEvery: 5})
	src := NewSimSource(osmgen.NewDiffStream(testGenConfig(), chunks), 0, days*chunks)
	if err := p.Run(context.Background(), src); err != nil {
		t.Fatal(err)
	}

	lo, hi, ok := ix.Coverage()
	olo, ohi, ook := oracle.Coverage()
	if !ok || !ook || lo != olo || hi != ohi {
		t.Fatalf("coverage mismatch: live [%v,%v,%v], oracle [%v,%v,%v]", lo, hi, ok, olo, ohi, ook)
	}
	for lvl := temporal.Daily; lvl <= temporal.Yearly; lvl++ {
		want := oracle.Periods(lvl)
		got := ix.Periods(lvl)
		if len(got) != len(want) {
			t.Fatalf("level %v: live has %d periods, oracle %d", lvl, len(got), len(want))
		}
		for _, per := range want {
			a, err := ix.Fetch(per)
			if err != nil {
				t.Fatalf("live fetch %v: %v", per, err)
			}
			b, err := oracle.Fetch(per)
			if err != nil {
				t.Fatalf("oracle fetch %v: %v", per, err)
			}
			if !a.Equal(b) {
				t.Fatalf("cube mismatch at %v: live total %d, oracle total %d", per, a.Total(), b.Total())
			}
		}
	}
	if e := ix.Epoch(); e != uint64(days*chunks) {
		t.Fatalf("epoch = %d, want %d (one per fold)", e, days*chunks)
	}
}

// TestFoldVisibilityAndStatus: each fold is query-visible immediately and the
// status snapshot tracks it.
func TestFoldVisibilityAndStatus(t *testing.T) {
	s := testSchema()
	ix, err := tindex.Create(t.TempDir(), s, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	p := NewPipeline(ix, Config{MaxCountry: len(s.Countries), MaxRoad: len(s.RoadTypes)})
	stream := osmgen.NewDiffStream(testGenConfig(), 3)

	var prevTotal uint64
	for i := 0; i < 6; i++ {
		d := stream.Next()
		err := p.FoldChunk(&Chunk{
			Day: d.Day, Seq: d.Seq, Of: d.Of, Last: d.Last,
			Change: d.Change, Changesets: d.Changesets, Emitted: time.Now(),
		})
		if err != nil {
			t.Fatal(err)
		}
		cb, err := ix.Fetch(temporal.DayPeriod(d.Day))
		if err != nil {
			t.Fatalf("fold %d not visible: %v", i, err)
		}
		if d.Seq == 0 {
			prevTotal = 0
		}
		if cb.Total() < prevTotal {
			t.Fatalf("fold %d: day total shrank %d -> %d", i, prevTotal, cb.Total())
		}
		prevTotal = cb.Total()
		st := p.Status()
		if st.Folds != int64(i+1) || st.Epoch != uint64(i+1) {
			t.Fatalf("status after fold %d: %+v", i, st)
		}
	}
	if got := p.Metrics().Folds.Value(); got != 6 {
		t.Fatalf("folds counter = %d, want 6", got)
	}
}

// TestCompressClosedFoldsToColdTier: with CompressClosed, every closed day
// and every rollup that closed with it migrates to the compressed cold tier
// as part of the fold path, while still-open rollups stay hot — and every
// cube read back through the cold tier is bit-identical to the batch oracle.
func TestCompressClosedFoldsToColdTier(t *testing.T) {
	const days, chunks = 16, 4
	oracle := buildOracle(t, t.TempDir(), days)
	defer oracle.Close()

	s := testSchema()
	ix, err := tindex.Create(t.TempDir(), s, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	p := NewPipeline(ix, Config{
		MaxCountry: len(s.Countries), MaxRoad: len(s.RoadTypes),
		CheckpointEvery: 5, CompressClosed: true,
	})
	src := NewSimSource(osmgen.NewDiffStream(testGenConfig(), chunks), 0, days*chunks)
	if err := p.Run(context.Background(), src); err != nil {
		t.Fatal(err)
	}

	_, hi, ok := ix.Coverage()
	if !ok {
		t.Fatal("no coverage after run")
	}
	for lvl := temporal.Daily; lvl <= temporal.Yearly; lvl++ {
		for _, per := range ix.Periods(lvl) {
			wantCold := per.End() <= hi // closed with some day's last chunk
			if got := ix.IsCold(per); got != wantCold {
				t.Errorf("%v (ends %v): cold=%v, want %v", per, per.End(), got, wantCold)
			}
			a, err := ix.Fetch(per)
			if err != nil {
				t.Fatalf("fetch %v: %v", per, err)
			}
			b, err := oracle.Fetch(per)
			if err != nil {
				t.Fatalf("oracle fetch %v: %v", per, err)
			}
			if !a.Equal(b) {
				t.Fatalf("cube mismatch at %v: live total %d, oracle total %d", per, a.Total(), b.Total())
			}
		}
	}
}

// TestFoldRejectsInterleavedDays: a chunk for a different day while one is
// open is a stream bug and must fail loudly, not corrupt the fold.
func TestFoldRejectsInterleavedDays(t *testing.T) {
	s := testSchema()
	ix, err := tindex.Create(t.TempDir(), s, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	p := NewPipeline(ix, Config{MaxCountry: len(s.Countries), MaxRoad: len(s.RoadTypes)})
	stream := osmgen.NewDiffStream(testGenConfig(), 4)
	d := stream.Next()
	if err := p.FoldChunk(&Chunk{Day: d.Day, Seq: 0, Of: 4, Change: d.Change, Changesets: d.Changesets, Emitted: time.Now()}); err != nil {
		t.Fatal(err)
	}
	bad := &Chunk{Day: d.Day + 1, Seq: 1, Of: 4, Change: &osmxml.Change{}, Emitted: time.Now()}
	if err := p.FoldChunk(bad); err == nil {
		t.Fatal("interleaved-day chunk folded without error")
	}
}
