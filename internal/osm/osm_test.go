package osm

import (
	"testing"
	"time"
)

func TestElementTypeStrings(t *testing.T) {
	for _, c := range []struct {
		t ElementType
		s string
	}{{Node, "node"}, {Way, "way"}, {Relation, "relation"}} {
		if c.t.String() != c.s {
			t.Errorf("%v.String() = %q", c.t, c.t.String())
		}
		got, err := ParseElementType(c.s)
		if err != nil || got != c.t {
			t.Errorf("ParseElementType(%q) = %v, %v", c.s, got, err)
		}
		if !c.t.Valid() {
			t.Errorf("%v should be valid", c.t)
		}
	}
	if _, err := ParseElementType("polygon"); err == nil {
		t.Error("polygon should not parse")
	}
	if ElementType(7).Valid() {
		t.Error("ElementType(7) invalid")
	}
	if len(ElementTypeNames()) != NumElementTypes {
		t.Error("catalog size mismatch")
	}
}

func TestSameGeometry(t *testing.T) {
	n1 := &Element{Type: Node, ID: 1, Lat: 1, Lon: 2}
	n2 := n1.Clone()
	if !SameGeometry(n1, n2) {
		t.Error("clone should have same geometry")
	}
	n2.Lat = 3
	if SameGeometry(n1, n2) {
		t.Error("moved node should differ")
	}

	w1 := &Element{Type: Way, ID: 1, NodeRefs: []int64{1, 2, 3}}
	w2 := w1.Clone()
	if !SameGeometry(w1, w2) {
		t.Error("same refs should match")
	}
	w2.NodeRefs[1] = 9
	if SameGeometry(w1, w2) {
		t.Error("changed ref should differ")
	}
	w3 := w1.Clone()
	w3.NodeRefs = w3.NodeRefs[:2]
	if SameGeometry(w1, w3) {
		t.Error("shorter way should differ")
	}

	r1 := &Element{Type: Relation, ID: 1, Members: []Member{{Way, 5, "outer"}}}
	r2 := r1.Clone()
	if !SameGeometry(r1, r2) {
		t.Error("same members should match")
	}
	r2.Members[0].Role = "inner"
	if SameGeometry(r1, r2) {
		t.Error("changed role should differ")
	}
	if SameGeometry(n1, w1) {
		t.Error("different types never match")
	}
}

func TestSameTags(t *testing.T) {
	a := &Element{Tags: map[string]string{"highway": "primary", "name": "A"}}
	b := &Element{Tags: map[string]string{"highway": "primary", "name": "A"}}
	if !SameTags(a, b) {
		t.Error("identical tags should match")
	}
	b.SetTag("name", "B")
	if SameTags(a, b) {
		t.Error("changed value should differ")
	}
	c := &Element{Tags: map[string]string{"highway": "primary"}}
	if SameTags(a, c) {
		t.Error("missing tag should differ")
	}
	var empty1, empty2 Element
	if !SameTags(&empty1, &empty2) {
		t.Error("two untagged elements match")
	}
}

func TestCloneIndependence(t *testing.T) {
	e := &Element{
		Type: Way, ID: 4, Version: 2, Timestamp: time.Now(),
		NodeRefs: []int64{1, 2}, Tags: map[string]string{"highway": "service"},
	}
	c := e.Clone()
	c.NodeRefs[0] = 99
	c.SetTag("highway", "track")
	if e.NodeRefs[0] == 99 || e.Tags["highway"] == "track" {
		t.Error("clone shares storage with original")
	}
	if e.Key() != c.Key() {
		t.Error("clone should keep identity")
	}
}

func TestSetTagNilMap(t *testing.T) {
	var e Element
	e.SetTag("highway", "path")
	if e.Tag("highway") != "path" {
		t.Error("SetTag on nil map failed")
	}
	if e.Tag("missing") != "" {
		t.Error("missing tag should be empty")
	}
}

func TestChangesetCenter(t *testing.T) {
	cs := Changeset{MinLat: 10, MaxLat: 20, MinLon: -40, MaxLon: -20}
	lat, lon := cs.Center()
	if lat != 15 || lon != -30 {
		t.Errorf("center = (%f, %f)", lat, lon)
	}
}
