// Package osm defines the OpenStreetMap conceptual data model used throughout
// RASED: elements (nodes, ways, relations) with versions, tags, timestamps,
// and changeset attribution, mirroring Section II-A of the paper.
package osm

import (
	"fmt"
	"time"
)

// ElementType distinguishes the three OSM element kinds.
type ElementType int

// The three OSM element types. The numeric values are part of the on-disk
// cube format.
const (
	Node ElementType = iota
	Way
	Relation
	numElementTypes
)

// NumElementTypes is the size of the element-type dimension.
const NumElementTypes = int(numElementTypes)

// String returns the lower-case OSM XML tag name of the element type.
func (t ElementType) String() string {
	switch t {
	case Node:
		return "node"
	case Way:
		return "way"
	case Relation:
		return "relation"
	default:
		return fmt.Sprintf("ElementType(%d)", int(t))
	}
}

// Valid reports whether t is one of the three element types.
func (t ElementType) Valid() bool { return t >= Node && t < numElementTypes }

// ParseElementType parses an OSM XML element name.
func ParseElementType(s string) (ElementType, error) {
	switch s {
	case "node":
		return Node, nil
	case "way":
		return Way, nil
	case "relation":
		return Relation, nil
	default:
		return 0, fmt.Errorf("osm: unknown element type %q", s)
	}
}

// ElementTypeNames returns the catalog of element type names in value order.
func ElementTypeNames() []string { return []string{"node", "way", "relation"} }

// Member is one member of a relation.
type Member struct {
	Type ElementType
	Ref  int64
	Role string
}

// Element is one version of an OSM element. Node elements carry coordinates;
// way elements carry node references; relation elements carry members.
type Element struct {
	Type        ElementType
	ID          int64
	Version     int
	Timestamp   time.Time
	ChangesetID int64
	UID         int64
	User        string
	Visible     bool

	Lat, Lon float64  // nodes only
	NodeRefs []int64  // ways only
	Members  []Member // relations only

	Tags map[string]string
}

// Key identifies an element across versions.
type Key struct {
	Type ElementType
	ID   int64
}

// Key returns the element's identity.
func (e *Element) Key() Key { return Key{e.Type, e.ID} }

// Tag returns the value of tag k, or "".
func (e *Element) Tag(k string) string { return e.Tags[k] }

// SetTag sets tag k to v, allocating the map if needed.
func (e *Element) SetTag(k, v string) {
	if e.Tags == nil {
		e.Tags = make(map[string]string)
	}
	e.Tags[k] = v
}

// SameGeometry reports whether two versions of the same element have
// identical geometry: node coordinates, way node lists, or relation member
// lists. A change in anything else is a metadata change. This is the
// classification rule of the paper's monthly crawler (Section V).
func SameGeometry(a, b *Element) bool {
	if a.Type != b.Type {
		return false
	}
	switch a.Type {
	case Node:
		return a.Lat == b.Lat && a.Lon == b.Lon
	case Way:
		if len(a.NodeRefs) != len(b.NodeRefs) {
			return false
		}
		for i := range a.NodeRefs {
			if a.NodeRefs[i] != b.NodeRefs[i] {
				return false
			}
		}
		return true
	case Relation:
		if len(a.Members) != len(b.Members) {
			return false
		}
		for i := range a.Members {
			if a.Members[i] != b.Members[i] {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// SameTags reports whether two element versions carry identical tag sets.
func SameTags(a, b *Element) bool {
	if len(a.Tags) != len(b.Tags) {
		return false
	}
	for k, v := range a.Tags {
		if b.Tags[k] != v {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the element.
func (e *Element) Clone() *Element {
	c := *e
	if e.NodeRefs != nil {
		c.NodeRefs = append([]int64(nil), e.NodeRefs...)
	}
	if e.Members != nil {
		c.Members = append([]Member(nil), e.Members...)
	}
	if e.Tags != nil {
		c.Tags = make(map[string]string, len(e.Tags))
		for k, v := range e.Tags {
			c.Tags[k] = v
		}
	}
	return &c
}

// Changeset is the metadata record of one OSM changeset: all updates
// submitted by one user in one session, with the bounding box of the edits
// (Section II-B).
type Changeset struct {
	ID         int64
	CreatedAt  time.Time
	ClosedAt   time.Time
	User       string
	UID        int64
	NumChanges int
	MinLat     float64
	MinLon     float64
	MaxLat     float64
	MaxLon     float64
	Tags       map[string]string
}

// Center returns the center point of the changeset bounding box; the daily
// crawler assigns this location to way and relation updates.
func (c *Changeset) Center() (lat, lon float64) {
	return (c.MinLat + c.MaxLat) / 2, (c.MinLon + c.MaxLon) / 2
}
