// Package plan implements RASED's level optimization (Section VII-B): given
// a query window [lo, hi], choose the mix of daily, weekly, monthly, and
// yearly cubes that covers the window exactly while fetching the fewest cubes
// from disk, taking into account which cubes the caching strategy already
// holds in memory.
//
// Because RASED's hierarchy is a strict tree (a month is four fixed weeks
// plus trailing days), the optimum is computed exactly by recursive
// decomposition: a node fully inside the window costs min(itself, sum of its
// children); a node partially covered must decompose.
package plan

import (
	"fmt"
	"sort"

	"rased/internal/temporal"
)

// Availability reports which periods have cubes on disk; *tindex.Index
// satisfies it.
type Availability interface {
	Has(p temporal.Period) bool
}

// CacheView reports which periods are pinned in memory; *cache.Cache
// satisfies it. A nil CacheView means nothing is cached.
type CacheView interface {
	Contains(p temporal.Period) bool
}

// Plan is an exact disjoint cover of a query window by index periods.
type Plan struct {
	Periods   []temporal.Period // chronological, disjoint, covering [Lo, Hi]
	Lo, Hi    temporal.Day
	DiskReads int // periods that must be fetched from disk
	Fetches   int // len(Periods)
}

// cost orders candidate sub-plans: fewest disk reads first, then fewest
// fetches (in-memory cubes still cost aggregation work).
type cost struct {
	disk    int
	fetches int
}

func (a cost) less(b cost) bool {
	if a.disk != b.disk {
		return a.disk < b.disk
	}
	return a.fetches < b.fetches
}

// Optimize computes the minimal-cost exact cover of [lo, hi] using periods up
// to maxLevel. Every day of the window must be available (callers clip the
// window to index coverage first).
func Optimize(lo, hi temporal.Day, maxLevel temporal.Level, avail Availability, cached CacheView) (*Plan, error) {
	if hi < lo {
		return nil, fmt.Errorf("plan: empty window [%v, %v]", lo, hi)
	}
	if !maxLevel.Valid() {
		return nil, fmt.Errorf("plan: invalid max level %d", maxLevel)
	}
	p := &Plan{Lo: lo, Hi: hi}
	var total cost
	for _, y := range temporal.PeriodsBetween(temporal.Yearly, lo, hi) {
		c, err := cover(y, lo, hi, maxLevel, avail, cached, &p.Periods)
		if err != nil {
			return nil, err
		}
		total.disk += c.disk
		total.fetches += c.fetches
	}
	sort.Slice(p.Periods, func(a, b int) bool {
		return p.Periods[a].Start() < p.Periods[b].Start()
	})
	p.DiskReads = total.disk
	p.Fetches = total.fetches
	return p, nil
}

// cover appends the optimal cover of node ∩ [lo, hi] to out and returns its
// cost. node is known to overlap the window.
func cover(node temporal.Period, lo, hi temporal.Day, maxLevel temporal.Level,
	avail Availability, cached CacheView, out *[]temporal.Period) (cost, error) {

	usable := node.Within(lo, hi) && node.Level <= maxLevel && avail.Has(node)
	self := cost{disk: 1, fetches: 1}
	if usable && cached != nil && cached.Contains(node) {
		self.disk = 0
	}

	if node.Level == temporal.Daily {
		if !avail.Has(node) {
			return cost{}, fmt.Errorf("plan: day %v has no cube", node)
		}
		*out = append(*out, node)
		return self, nil
	}

	// Cost of decomposing into children. Collected into a scratch slice so a
	// cheaper self can discard it.
	var childPeriods []temporal.Period
	var childCost cost
	for _, ch := range node.Children() {
		if !ch.Overlaps(lo, hi) {
			continue
		}
		c, err := cover(ch, lo, hi, maxLevel, avail, cached, &childPeriods)
		if err != nil {
			return cost{}, err
		}
		childCost.disk += c.disk
		childCost.fetches += c.fetches
	}

	if usable && self.less(childCost) {
		*out = append(*out, node)
		return self, nil
	}
	*out = append(*out, childPeriods...)
	return childCost, nil
}

// Flat returns the one-level plan that reads every daily cube of the window —
// the paper's RASED-F baseline.
func Flat(lo, hi temporal.Day, avail Availability, cached CacheView) (*Plan, error) {
	return Optimize(lo, hi, temporal.Daily, avail, cached)
}

// CoverPeriod plans the intersection of an arbitrary period with a window,
// used for time-series queries that group by a coarser granularity than the
// available cubes at the window edges.
func CoverPeriod(p temporal.Period, lo, hi temporal.Day, maxLevel temporal.Level,
	avail Availability, cached CacheView) (*Plan, error) {
	s, e := p.Start(), p.End()
	if s < lo {
		s = lo
	}
	if e > hi {
		e = hi
	}
	return Optimize(s, e, maxLevel, avail, cached)
}

// Validate checks that the plan is an exact disjoint cover of its window.
// Used by tests and available to callers as a sanity check.
func (p *Plan) Validate() error {
	next := p.Lo
	for _, per := range p.Periods {
		if per.Start() != next {
			return fmt.Errorf("plan: gap or overlap at %v (period starts %v, want %v)", per, per.Start(), next)
		}
		next = per.End() + 1
	}
	if next != p.Hi+1 {
		return fmt.Errorf("plan: cover stops at %v, want %v", next-1, p.Hi)
	}
	if p.Fetches != len(p.Periods) {
		return fmt.Errorf("plan: fetches %d != %d periods", p.Fetches, len(p.Periods))
	}
	return nil
}
