package plan

import (
	"math/rand"
	"testing"
	"time"

	"rased/internal/temporal"
)

// fakeAvail mirrors tindex availability: every day in [lo, hi] has a cube,
// and every complete higher-level period up to maxLevel does too.
type fakeAvail struct {
	lo, hi   temporal.Day
	maxLevel temporal.Level
}

func (f fakeAvail) Has(p temporal.Period) bool {
	if p.Level > f.maxLevel {
		return false
	}
	return p.Start() >= f.lo && p.End() <= f.hi
}

// fakeCache holds an explicit period set.
type fakeCache map[temporal.Period]bool

func (f fakeCache) Contains(p temporal.Period) bool { return f[p] }

func TestPaperExample(t *testing.T) {
	// The paper's running example: Jan 1, 2022 - Feb 15, 2022. Under RASED's
	// month = 4 weeks + tail layout, the optimum without cache is 4 cubes:
	// January, Feb week 1, Feb week 2, Feb 15.
	avail := fakeAvail{temporal.NewDay(2020, time.January, 1), temporal.NewDay(2022, time.December, 31), temporal.Yearly}
	lo := temporal.NewDay(2022, time.January, 1)
	hi := temporal.NewDay(2022, time.February, 15)
	p, err := Optimize(lo, hi, temporal.Yearly, avail, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Fetches != 4 || p.DiskReads != 4 {
		t.Errorf("plan = %d fetches %d disk, want 4/4: %v", p.Fetches, p.DiskReads, p.Periods)
	}
	wantLevels := []temporal.Level{temporal.Monthly, temporal.Weekly, temporal.Weekly, temporal.Daily}
	for i, per := range p.Periods {
		if per.Level != wantLevels[i] {
			t.Errorf("period %d = %v, want level %v", i, per, wantLevels[i])
		}
	}

	// With the last 60 daily cubes cached (high-α cache) and nothing else,
	// the all-days plan costs zero disk reads and wins — the paper's plan (a)
	// discussion.
	cached := fakeCache{}
	for d := hi - 59; d <= hi; d++ {
		cached[temporal.DayPeriod(d)] = true
	}
	p2, err := Optimize(lo, hi, temporal.Yearly, avail, cached)
	if err != nil {
		t.Fatal(err)
	}
	if p2.DiskReads != 0 {
		t.Errorf("cached plan disk reads = %d, want 0: %v", p2.DiskReads, p2.Periods)
	}
	if p2.Fetches != int(hi-lo)+1 {
		t.Errorf("cached plan fetches = %d, want all %d days", p2.Fetches, int(hi-lo)+1)
	}
	for _, per := range p2.Periods {
		if per.Level != temporal.Daily {
			t.Errorf("cached plan should be all daily, got %v", per)
		}
	}
}

func TestFullYearUsesYearCube(t *testing.T) {
	avail := fakeAvail{temporal.NewDay(2018, time.January, 1), temporal.NewDay(2022, time.December, 31), temporal.Yearly}
	lo := temporal.NewDay(2020, time.January, 1)
	hi := temporal.NewDay(2021, time.December, 31)
	p, err := Optimize(lo, hi, temporal.Yearly, avail, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Fetches != 2 {
		t.Errorf("two full years should need 2 cubes, got %d: %v", p.Fetches, p.Periods)
	}
	for _, per := range p.Periods {
		if per.Level != temporal.Yearly {
			t.Errorf("expected yearly cube, got %v", per)
		}
	}
}

func TestMaxLevelRestriction(t *testing.T) {
	avail := fakeAvail{temporal.NewDay(2020, time.January, 1), temporal.NewDay(2021, time.December, 31), temporal.Yearly}
	lo := temporal.NewDay(2021, time.January, 1)
	hi := temporal.NewDay(2021, time.December, 31)

	p, err := Optimize(lo, hi, temporal.Monthly, avail, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Fetches != 12 {
		t.Errorf("monthly-capped full year = %d cubes, want 12", p.Fetches)
	}
	flat, err := Flat(lo, hi, avail, nil)
	if err != nil {
		t.Fatal(err)
	}
	if flat.Fetches != 365 {
		t.Errorf("flat plan = %d cubes, want 365", flat.Fetches)
	}
	for _, per := range flat.Periods {
		if per.Level != temporal.Daily {
			t.Errorf("flat plan must be daily, got %v", per)
		}
	}
}

func TestAvailabilityEdges(t *testing.T) {
	// Index covering Jan 5 onward: week 1 and January lack cubes, so the
	// plan decomposes them into days.
	avail := fakeAvail{temporal.NewDay(2021, time.January, 5), temporal.NewDay(2021, time.December, 31), temporal.Yearly}
	lo := temporal.NewDay(2021, time.January, 5)
	hi := temporal.NewDay(2021, time.February, 28)
	p, err := Optimize(lo, hi, temporal.Yearly, avail, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Jan 5-7 daily (week 1 incomplete), weeks 2-4, Jan 29-31 daily (tail),
	// February monthly.
	var daily, weekly, monthly int
	for _, per := range p.Periods {
		switch per.Level {
		case temporal.Daily:
			daily++
		case temporal.Weekly:
			weekly++
		case temporal.Monthly:
			monthly++
		}
	}
	if daily != 6 || weekly != 3 || monthly != 1 {
		t.Errorf("plan shape = %d daily, %d weekly, %d monthly: %v", daily, weekly, monthly, p.Periods)
	}
}

func TestMissingDayErrors(t *testing.T) {
	avail := fakeAvail{temporal.NewDay(2021, time.January, 1), temporal.NewDay(2021, time.January, 31), temporal.Yearly}
	_, err := Optimize(temporal.NewDay(2021, time.January, 20), temporal.NewDay(2021, time.February, 10), temporal.Yearly, avail, nil)
	if err == nil {
		t.Error("window beyond coverage should error")
	}
	if _, err := Optimize(10, 5, temporal.Yearly, avail, nil); err == nil {
		t.Error("inverted window should error")
	}
	if _, err := Optimize(10, 20, temporal.Level(9), avail, nil); err == nil {
		t.Error("invalid level should error")
	}
}

func TestCoverPeriodClips(t *testing.T) {
	avail := fakeAvail{temporal.NewDay(2021, time.January, 1), temporal.NewDay(2021, time.December, 31), temporal.Yearly}
	m := temporal.MonthPeriod(temporal.NewDay(2021, time.March, 1))
	lo := temporal.NewDay(2021, time.March, 10)
	hi := temporal.NewDay(2021, time.June, 30)
	p, err := CoverPeriod(m, lo, hi, temporal.Yearly, avail, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Lo != lo || p.Hi != m.End() {
		t.Errorf("clipped window = [%v, %v]", p.Lo, p.Hi)
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}

// bruteForceMinDisk computes the optimal disk cost independently: shortest
// path over day boundaries where every available period inside the window is
// an edge costing 0 (cached) or 1.
func bruteForceMinDisk(lo, hi temporal.Day, maxLevel temporal.Level, avail Availability, cached CacheView) int {
	n := int(hi-lo) + 1
	const inf = 1 << 30
	dist := make([]int, n+1)
	for i := 1; i <= n; i++ {
		dist[i] = inf
	}
	for i := 0; i < n; i++ {
		if dist[i] == inf {
			continue
		}
		d := lo + temporal.Day(i)
		for lvl := temporal.Daily; lvl <= maxLevel; lvl++ {
			p, ok := temporal.PeriodOf(lvl, d)
			if !ok || p.Start() != d || p.End() > hi || !avail.Has(p) {
				continue
			}
			c := 1
			if cached != nil && cached.Contains(p) {
				c = 0
			}
			j := int(p.End()-lo) + 1
			if dist[i]+c < dist[j] {
				dist[j] = dist[i] + c
			}
		}
	}
	return dist[n]
}

func TestOptimalityAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	covLo := temporal.NewDay(2019, time.January, 1)
	covHi := temporal.NewDay(2022, time.December, 31)
	avail := fakeAvail{covLo, covHi, temporal.Yearly}

	for trial := 0; trial < 200; trial++ {
		lo := covLo + temporal.Day(rng.Intn(1000))
		hi := lo + temporal.Day(rng.Intn(450))
		if hi > covHi {
			hi = covHi
		}
		// Random cache: pin some recent days/weeks/months.
		cached := fakeCache{}
		for i := 0; i < rng.Intn(40); i++ {
			d := lo + temporal.Day(rng.Intn(int(hi-lo)+1))
			lvl := temporal.Level(rng.Intn(4))
			if p, ok := temporal.PeriodOf(lvl, d); ok && avail.Has(p) {
				cached[p] = true
			}
		}
		got, err := Optimize(lo, hi, temporal.Yearly, avail, cached)
		if err != nil {
			t.Fatal(err)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := bruteForceMinDisk(lo, hi, temporal.Yearly, avail, cached)
		if got.DiskReads != want {
			t.Fatalf("trial %d [%v, %v]: disk reads %d, brute force %d",
				trial, lo, hi, got.DiskReads, want)
		}
	}
}

func TestPlanIsAlwaysExactCover(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	covLo := temporal.NewDay(2020, time.March, 10)
	covHi := temporal.NewDay(2023, time.August, 20)
	for _, maxLvl := range []temporal.Level{temporal.Daily, temporal.Weekly, temporal.Monthly, temporal.Yearly} {
		avail := fakeAvail{covLo, covHi, maxLvl}
		for trial := 0; trial < 100; trial++ {
			lo := covLo + temporal.Day(rng.Intn(800))
			hi := lo + temporal.Day(rng.Intn(500))
			if hi > covHi {
				hi = covHi
			}
			p, err := Optimize(lo, hi, maxLvl, avail, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("maxLvl %v trial %d: %v", maxLvl, trial, err)
			}
		}
	}
}
