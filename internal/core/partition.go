package core

import (
	"context"
	"sort"

	"rased/internal/temporal"
)

// restriction narrows one analyze call to a partition's slice of the cube:
// a set of allowed country catalog values and, when windowed, a day range
// intersected with the query window. The query itself is never rewritten, so
// everything derived from it — Percentage denominators, their as-of snapshot
// day, date-bucket labels — matches whole-query execution exactly, and
// partials from disjoint restrictions merge additively into the single-node
// answer.
type restriction struct {
	countries []int
	lo, hi    temporal.Day
	windowed  bool
}

// AnalyzePartitionContext executes q restricted to the window [lo, hi] and to
// a set of country catalog values — a shard's partitions in a clustered
// deployment (see internal/cluster).
//
// The window intersects the query window (and index coverage); the country
// set intersects the query's compiled country filter: an unfiltered query
// reads exactly the allowed values, a filtered one reads filter ∩ allowed,
// and an empty intersection returns an empty result without touching the
// index. Because every cube cell belongs to exactly one country catalog value
// (zone rollups are themselves values with their own cells), partial results
// produced under disjoint restrictions merge additively — including
// Percentage rows, whose denominator and snapshot day depend only on the
// query, never on the restriction.
func (e *Engine) AnalyzePartitionContext(ctx context.Context, q Query, lo, hi temporal.Day, countries []int) (*Result, error) {
	if countries == nil {
		countries = []int{}
	}
	return e.analyzeAdmitted(ctx, q, &restriction{countries: countries, lo: lo, hi: hi, windowed: true})
}

// restrictCountries intersects a compiled country filter with the allowed
// value set. A nil filter (no restriction in the query) becomes a sorted copy
// of the allowed values; a non-nil filter keeps its own deterministic order,
// dropping values outside the allowed set.
func restrictCountries(filtered, allowed []int) []int {
	if filtered == nil {
		out := make([]int, len(allowed))
		copy(out, allowed)
		sort.Ints(out)
		return out
	}
	set := make(map[int]bool, len(allowed))
	for _, v := range allowed {
		set[v] = true
	}
	out := make([]int, 0, len(filtered))
	for _, v := range filtered {
		if set[v] {
			out = append(out, v)
		}
	}
	return out
}
