package core

// Degraded-mode execution tests: replanning an unreadable rollup cube from
// its constituents must be bit-identical to the lost cube (rollups ARE sums
// of their children), leaf failures must surface the typed ErrDegraded, and
// the quarantine left behind must steer the next plan around the bad page.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"rased/internal/cube"
	"rased/internal/faultstore"
	"rased/internal/pagestore"
	"rased/internal/temporal"
	"rased/internal/tindex"
)

func fbSchema() *cube.Schema { return cube.ScaledSchema(10, 6) }

func fbDayCube(s *cube.Schema, d temporal.Day) *cube.Cube {
	cb := cube.New(s)
	rng := rand.New(rand.NewSource(int64(d)))
	de, dc, dr, du := s.Dims()
	for i := 0; i < 3+int(d)%5; i++ {
		cb.Add(rng.Intn(de), rng.Intn(dc), rng.Intn(dr), rng.Intn(du), 1)
	}
	return cb
}

// fbIndex builds a dedicated small index (the shared fixture must stay
// pristine — these tests corrupt pages).
func fbIndex(t *testing.T, days int, opts ...tindex.Option) *tindex.Index {
	t.Helper()
	ix, err := tindex.Create(t.TempDir(), fbSchema(), 4, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	lo := temporal.NewDay(2021, time.January, 1)
	for i := 0; i < days; i++ {
		d := lo + temporal.Day(i)
		if err := ix.AppendDay(d, fbDayCube(ix.Schema(), d)); err != nil {
			t.Fatalf("append %v: %v", d, err)
		}
	}
	return ix
}

func fbEngine(t *testing.T, ix *tindex.Index, opts Options) *Engine {
	t.Helper()
	e, err := NewEngine(ix, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// fbCorrupt flips one payload byte of period p's page on disk, so the next
// fetch fails its checksum.
func fbCorrupt(t *testing.T, ix *tindex.Index, p temporal.Period) {
	t.Helper()
	page, ok := ix.PageOf(p)
	if !ok {
		t.Fatalf("no page for %v", p)
	}
	buf := make([]byte, ix.Store().PageSize())
	if err := ix.Store().ReadPage(page, buf); err != nil {
		t.Fatal(err)
	}
	buf[100] ^= 0xFF
	if err := ix.Store().WritePage(page, buf); err != nil {
		t.Fatal(err)
	}
}

// TestFallbackReconstructionPerLevel is the table-driven replan check: for
// every rollup level, summing the constituent cubes must reproduce the stored
// rollup exactly (cube.Equal, not approximately).
func TestFallbackReconstructionPerLevel(t *testing.T) {
	ix := fbIndex(t, 400) // covers all of 2021, so the yearly rollup exists
	e := fbEngine(t, ix, Options{LevelOptimization: true, DegradedFallback: true})
	lo := temporal.NewDay(2021, time.January, 1)
	week, ok := temporal.WeekPeriod(lo)
	if !ok {
		t.Fatal("first day of month must open a week")
	}
	cases := []struct {
		name string
		p    temporal.Period
	}{
		{"year_from_months", temporal.YearPeriod(lo)},
		{"month_from_weeks_and_days", temporal.MonthPeriod(lo)},
		{"week_from_days", week},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			orig, err := ix.Fetch(tc.p)
			if err != nil {
				t.Fatalf("fetch stored rollup %v: %v", tc.p, err)
			}
			var res Result
			rd, err := e.fetchFallback(context.Background(), tc.p, &res)
			if err != nil {
				t.Fatalf("fetchFallback(%v): %v", tc.p, err)
			}
			got, okc := rd.(*cube.Cube)
			if !okc {
				t.Fatalf("fallback returned %T, want *cube.Cube", rd)
			}
			if !got.Equal(orig) {
				t.Fatalf("reconstruction of %v differs from the stored rollup", tc.p)
			}
			if res.Stats.ReplannedPeriods != 1 {
				t.Fatalf("ReplannedPeriods = %d, want 1", res.Stats.ReplannedPeriods)
			}
			if res.Stats.FallbackCubes != len(tc.p.Children()) {
				t.Fatalf("FallbackCubes = %d, want %d constituents", res.Stats.FallbackCubes, len(tc.p.Children()))
			}
		})
	}
	// A daily cube is a leaf: nothing finer exists to substitute.
	var res Result
	if _, err := e.fetchFallback(context.Background(), temporal.DayPeriod(lo), &res); !errors.Is(err, ErrDegraded) {
		t.Fatalf("daily fallback must be ErrDegraded, got %v", err)
	}
}

func TestAnalyzeReplansAroundCorruptMonth(t *testing.T) {
	ix := fbIndex(t, 70) // Jan + Feb 2021 complete, plus 11 days of March
	e := fbEngine(t, ix, Options{LevelOptimization: true, DegradedFallback: true})
	lo := temporal.NewDay(2021, time.January, 1)
	q := Query{From: lo, To: lo + 69}
	oracle, err := e.Analyze(q)
	if err != nil {
		t.Fatal(err)
	}

	month := temporal.MonthPeriod(lo)
	fbCorrupt(t, ix, month)
	res, err := e.Analyze(q)
	if err != nil {
		t.Fatalf("query over a corrupt monthly cube must replan, not fail: %v", err)
	}
	if res.Total != oracle.Total || !reflect.DeepEqual(res.Rows, oracle.Rows) {
		t.Fatalf("degraded answer differs from oracle: total %d vs %d", res.Total, oracle.Total)
	}
	if res.Stats.ReplannedPeriods != 1 {
		t.Fatalf("ReplannedPeriods = %d, want 1", res.Stats.ReplannedPeriods)
	}
	// January = 4 fixed weeks + trailing days 29..31.
	if res.Stats.FallbackCubes != 7 {
		t.Fatalf("FallbackCubes = %d, want 7", res.Stats.FallbackCubes)
	}
	if got := e.Metrics().FallbackReplans.Value(); got != 1 {
		t.Fatalf("rased_fallback_replans_total = %d, want 1", got)
	}
	h := e.Health()
	if !h.Degraded || h.QuarantinedPages != 1 {
		t.Fatalf("health after replan = %+v, want degraded with 1 quarantined page", h)
	}

	// The failed fetch quarantined the page, so the next plan routes around
	// it up front: exact answer again, no fallback pass this time.
	res2, err := e.Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Total != oracle.Total {
		t.Fatalf("replanned total = %d, oracle %d", res2.Total, oracle.Total)
	}
	if res2.Stats.ReplannedPeriods != 0 {
		t.Fatalf("second query still fell back (%d replans); planner should route around quarantine", res2.Stats.ReplannedPeriods)
	}
}

// TestAnalyzeRecursiveFallback corrupts a monthly cube AND one of its weekly
// constituents: reconstruction must recurse through the bad week down to its
// seven dailies and still produce the exact answer.
func TestAnalyzeRecursiveFallback(t *testing.T) {
	ix := fbIndex(t, 70)
	e := fbEngine(t, ix, Options{LevelOptimization: true, DegradedFallback: true})
	lo := temporal.NewDay(2021, time.January, 1)
	q := Query{From: lo, To: lo + 69}
	oracle, err := e.Analyze(q)
	if err != nil {
		t.Fatal(err)
	}

	month := temporal.MonthPeriod(lo)
	week, _ := temporal.WeekPeriod(lo)
	fbCorrupt(t, ix, month)
	fbCorrupt(t, ix, week)
	res, err := e.Analyze(q)
	if err != nil {
		t.Fatalf("recursive fallback failed: %v", err)
	}
	if res.Total != oracle.Total || !reflect.DeepEqual(res.Rows, oracle.Rows) {
		t.Fatalf("recursive degraded answer differs from oracle: total %d vs %d", res.Total, oracle.Total)
	}
	if res.Stats.ReplannedPeriods != 1 {
		t.Fatalf("ReplannedPeriods = %d, want 1 (recursion is not a second replan)", res.Stats.ReplannedPeriods)
	}
	// 3 healthy weeks + 3 trailing days + the bad week's 7 dailies.
	if res.Stats.FallbackCubes != 13 {
		t.Fatalf("FallbackCubes = %d, want 13", res.Stats.FallbackCubes)
	}
}

func TestAnalyzeLeafFailureDegradesTyped(t *testing.T) {
	ix := fbIndex(t, 10)
	e := fbEngine(t, ix, Options{LevelOptimization: true, DegradedFallback: true})
	lo := temporal.NewDay(2021, time.January, 1)
	// A 3-day window is answered from dailies; the middle one is destroyed.
	fbCorrupt(t, ix, temporal.DayPeriod(lo+2))
	_, err := e.Analyze(Query{From: lo + 1, To: lo + 3})
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("unreadable leaf day must fail typed ErrDegraded, got %v", err)
	}
	if got := e.Metrics().DegradedQueries.Value(); got != 1 {
		t.Fatalf("rased_degraded_queries_total = %d, want 1", got)
	}
	if !e.Health().Degraded {
		t.Fatal("health must report degraded after a leaf quarantine")
	}
}

func TestAnalyzeFallbackDisabled(t *testing.T) {
	ix := fbIndex(t, 70)
	e := fbEngine(t, ix, Options{LevelOptimization: true})
	lo := temporal.NewDay(2021, time.January, 1)
	fbCorrupt(t, ix, temporal.MonthPeriod(lo))
	_, err := e.Analyze(Query{From: lo, To: lo + 69})
	if !errors.Is(err, tindex.ErrCorruptPage) {
		t.Fatalf("with fallback off, corruption must fail the query typed, got %v", err)
	}
}

// TestAnalyzeFallbackOnInjectedPermanentError drives the fallback from a
// store-level read failure (dead sector) rather than a checksum mismatch:
// no quarantine is involved, so every query replans — and every answer is
// still exact. Runs with coalesced reads on to cover that fan-out path too.
func TestAnalyzeFallbackOnInjectedPermanentError(t *testing.T) {
	var fs *faultstore.Store
	ix := fbIndex(t, 70, tindex.WithStoreWrapper(func(p pagestore.Pager) pagestore.Pager {
		fs = faultstore.New(p, 7)
		return fs
	}))
	e := fbEngine(t, ix, Options{
		LevelOptimization: true,
		DegradedFallback:  true,
		FetchWorkers:      4,
		CoalesceReads:     true,
	})
	lo := temporal.NewDay(2021, time.January, 1)
	q := Query{From: lo, To: lo + 69}
	oracle, err := e.Analyze(q)
	if err != nil {
		t.Fatal(err)
	}

	page, ok := ix.PageOf(temporal.MonthPeriod(lo))
	if !ok {
		t.Fatal("no page for January")
	}
	fs.AddRule(faultstore.Rule{Op: faultstore.OpRead, Kind: faultstore.KindPermanent, Page: page})
	for i := 0; i < 2; i++ {
		res, err := e.Analyze(q)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if res.Total != oracle.Total || !reflect.DeepEqual(res.Rows, oracle.Rows) {
			t.Fatalf("run %d: degraded answer differs from oracle", i)
		}
		if res.Stats.ReplannedPeriods != 1 {
			t.Fatalf("run %d: ReplannedPeriods = %d, want 1 (dead sector is not quarantined)", i, res.Stats.ReplannedPeriods)
		}
	}
}

// TestAnalyzeCoalescedRunSplitsOnTransient: a transient failure of a whole
// coalesced read must not fail the query — the run is refetched per page, the
// healthy members recover, and no fallback is needed.
func TestAnalyzeCoalescedRunSplitsOnTransient(t *testing.T) {
	var fs *faultstore.Store
	ix := fbIndex(t, 70, tindex.WithStoreWrapper(func(p pagestore.Pager) pagestore.Pager {
		fs = faultstore.New(p, 3)
		return fs
	}))
	e := fbEngine(t, ix, Options{
		LevelOptimization: true,
		DegradedFallback:  true,
		CoalesceReads:     true,
	})
	lo := temporal.NewDay(2021, time.January, 1)
	q := Query{From: lo, To: lo + 69}
	oracle, err := e.Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	// The window's tail (March 8..11) is a page-adjacent daily run; one
	// transient fault fails its coalesced read exactly once.
	page, ok := ix.PageOf(temporal.DayPeriod(lo + 67))
	if !ok {
		t.Fatal("no page for tail day")
	}
	fs.AddRule(faultstore.Rule{Op: faultstore.OpRead, Kind: faultstore.KindTransient, Page: page, Count: 1})
	res, err := e.Analyze(q)
	if err != nil {
		t.Fatalf("split run should recover every member: %v", err)
	}
	if res.Total != oracle.Total {
		t.Fatalf("total = %d, oracle %d", res.Total, oracle.Total)
	}
	if res.Stats.ReplannedPeriods != 0 {
		t.Fatalf("ReplannedPeriods = %d, want 0 (members recovered on refetch)", res.Stats.ReplannedPeriods)
	}
}

// FuzzFallbackCorruptMonthlyPage feeds arbitrary bytes into a rollup cube's
// page and asserts the degraded-mode invariant: the query either answers
// bit-identically to the fault-free oracle or the replacement page was a
// genuinely valid cube page for that period (in which case reading it as-is
// is correct behaviour, not a missed fault).
func FuzzFallbackCorruptMonthlyPage(f *testing.F) {
	dir := f.TempDir()
	ix, err := tindex.Create(dir, fbSchema(), 4)
	if err != nil {
		f.Fatal(err)
	}
	defer ix.Close()
	lo := temporal.NewDay(2021, time.January, 1)
	for i := 0; i < 40; i++ {
		d := lo + temporal.Day(i)
		if err := ix.AppendDay(d, fbDayCube(ix.Schema(), d)); err != nil {
			f.Fatal(err)
		}
	}
	e, err := NewEngine(ix, Options{LevelOptimization: true, DegradedFallback: true})
	if err != nil {
		f.Fatal(err)
	}
	q := Query{From: lo, To: lo + 39}
	oracle, err := e.Analyze(q)
	if err != nil {
		f.Fatal(err)
	}
	month := temporal.MonthPeriod(lo)
	page, ok := ix.PageOf(month)
	if !ok {
		f.Fatal("no page for January")
	}
	pageSize := ix.Store().PageSize()
	orig := make([]byte, pageSize)
	if err := ix.Store().ReadPage(page, orig); err != nil {
		f.Fatal(err)
	}

	f.Add(append([]byte(nil), orig...)) // valid page
	f.Add(make([]byte, pageSize))       // zeroed page
	f.Add([]byte("RASEDCB1 not a real header"))
	mangled := append([]byte(nil), orig...)
	mangled[0] ^= 0xFF // bad magic
	f.Add(mangled)
	torn := append([]byte(nil), orig...)
	for i := pageSize / 2; i < pageSize; i++ { // torn tail
		torn[i] = 0
	}
	f.Add(torn)

	f.Fuzz(func(t *testing.T, data []byte) {
		buf := make([]byte, pageSize)
		copy(buf, data) // truncate long inputs, zero-pad short ones
		if err := ix.Store().WritePage(page, buf); err != nil {
			t.Fatal(err)
		}
		defer func() {
			// Undo the damage and release the quarantine via a verifying
			// scrub, so iterations stay independent.
			if err := ix.Store().WritePage(page, orig); err != nil {
				t.Fatal(err)
			}
			if _, err := ix.Scrub(); err != nil {
				t.Fatalf("scrub after restore: %v", err)
			}
		}()
		res, err := e.Analyze(q)
		if err != nil {
			t.Fatalf("single corrupt rollup page must never fail the query: %v", err)
		}
		if _, got, perr := cube.UnmarshalPage(ix.Schema(), buf); perr == nil && got == month {
			return // fuzzer built a valid page for this very period
		}
		if res.Total != oracle.Total {
			t.Fatalf("degraded total = %d, oracle %d", res.Total, oracle.Total)
		}
	})
}

// TestFallbackEligibility pins the eligibility taxonomy: cancellation and
// missing cubes must never be replanned around; storage failures must be.
func TestFallbackEligibility(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"canceled", context.Canceled, false},
		{"deadline_wrapped", fmt.Errorf("fetch: %w", context.DeadlineExceeded), false},
		{"no_cube", fmt.Errorf("fetch: %w", tindex.ErrNoCube), false},
		{"corrupt_page", fmt.Errorf("fetch: %w", tindex.ErrCorruptPage), true},
		{"transient", pagestore.ErrTransient, true},
		{"unknown_io", errors.New("disk on fire"), true},
	}
	for _, tc := range cases {
		if got := fallbackEligible(tc.err); got != tc.want {
			t.Errorf("%s: fallbackEligible(%v) = %v, want %v", tc.name, tc.err, got, tc.want)
		}
	}
}

// fbBadReader is a cube.Reader of a concrete type mergeReader cannot merge.
type fbBadReader struct{ cube.Reader }

// TestMergeReader covers both mergeable reader shapes (decoded cube, lazy
// page view — they must merge identically) and the unmergeable default.
func TestMergeReader(t *testing.T) {
	ix := fbIndex(t, 7)
	p := temporal.DayPeriod(temporal.NewDay(2021, time.January, 3))
	cb, err := ix.Fetch(p)
	if err != nil {
		t.Fatal(err)
	}
	view, err := ix.FetchViewCtx(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	fromCube, fromView := cube.New(ix.Schema()), cube.New(ix.Schema())
	if err := mergeReader(fromCube, cb); err != nil {
		t.Fatalf("merge *cube.Cube: %v", err)
	}
	if err := mergeReader(fromView, view); err != nil {
		t.Fatalf("merge *cube.PageView: %v", err)
	}
	if !fromCube.Equal(fromView) {
		t.Error("merging a decoded cube and its page view diverged")
	}
	if err := mergeReader(fromCube, fbBadReader{}); err == nil {
		t.Error("merging an unknown reader type must fail")
	}
}

// TestFallbackMissingConstituentDegrades covers the honesty rule: a rollup
// period whose constituents are absent from the index cannot be reconstructed
// and must fail typed, not fabricate a partial sum.
func TestFallbackMissingConstituentDegrades(t *testing.T) {
	ix := fbIndex(t, 40) // January and part of February only
	e := fbEngine(t, ix, Options{LevelOptimization: true, DegradedFallback: true})
	res := &Result{}
	mar := temporal.MonthPeriod(temporal.NewDay(2021, time.March, 1))
	if _, err := e.fetchFallback(context.Background(), mar, res); !errors.Is(err, ErrDegraded) {
		t.Fatalf("fallback for uncovered month = %v, want ErrDegraded", err)
	}
}

// TestFallbackCancelledContext: cancellation is the caller giving up, so the
// reconstruction loop must stop with the ctx error, not ErrDegraded.
func TestFallbackCancelledContext(t *testing.T) {
	ix := fbIndex(t, 40)
	e := fbEngine(t, ix, Options{LevelOptimization: true, DegradedFallback: true})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := &Result{}
	jan := temporal.MonthPeriod(temporal.NewDay(2021, time.January, 1))
	_, err := e.fetchFallback(ctx, jan, res)
	if !errors.Is(err, context.Canceled) || errors.Is(err, ErrDegraded) {
		t.Fatalf("fallback under cancelled ctx = %v, want context.Canceled and not ErrDegraded", err)
	}
}

// TestFallbackConstituentDeadline: a deadline that expires inside a
// constituent fetch (injected latency) must propagate the ctx error through
// the reconstruction instead of being replanned around.
func TestFallbackConstituentDeadline(t *testing.T) {
	var fs *faultstore.Store
	ix := fbIndex(t, 40, tindex.WithStoreWrapper(func(p pagestore.Pager) pagestore.Pager {
		fs = faultstore.New(p, 7)
		return fs
	}))
	e := fbEngine(t, ix, Options{LevelOptimization: true, DegradedFallback: true})
	fs.AddRule(faultstore.Rule{Op: faultstore.OpRead, Kind: faultstore.KindLatency, Page: -1, Latency: 200 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	res := &Result{}
	jan := temporal.MonthPeriod(temporal.NewDay(2021, time.January, 1))
	_, err := e.fetchFallback(ctx, jan, res)
	if !errors.Is(err, context.DeadlineExceeded) || errors.Is(err, ErrDegraded) {
		t.Fatalf("fallback past deadline = %v, want context.DeadlineExceeded and not ErrDegraded", err)
	}
}
