package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"rased/internal/cache"
	"rased/internal/cube"
	"rased/internal/osm"
	"rased/internal/temporal"
	"rased/internal/tindex"
	"rased/internal/update"
)

func TestExplanationPrintEmpty(t *testing.T) {
	var buf bytes.Buffer
	(&Explanation{Empty: true}).Print(&buf)
	if !strings.Contains(buf.String(), "plan: empty") {
		t.Errorf("empty explanation printed %q", buf.String())
	}
}

func TestExplanationPrint(t *testing.T) {
	f := getFixture(t)
	e := newEngine(t, f, Options{CacheSlots: 0, LevelOptimization: false})
	ex, err := e.Explain(Query{From: f.lo, To: f.lo + 9})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	ex.Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "plan: window "+f.lo.String()) {
		t.Errorf("missing window header in %q", out)
	}
	// Ten flat daily cubes summarize into one ×10 disk run.
	if !strings.Contains(out, "×10 (disk)") {
		t.Errorf("missing run summary in %q", out)
	}

	// A date-grouped window prints one bucket section per period.
	ex, err = e.Explain(Query{From: f.lo, To: f.lo + 13, GroupBy: GroupBy{Date: ByWeek}})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	ex.Print(&buf)
	if !strings.Contains(buf.String(), "bucket ") {
		t.Errorf("missing bucket sections in %q", buf.String())
	}
}

func TestExplanationPrintCacheMark(t *testing.T) {
	f := getFixture(t)
	e := newEngine(t, f, Options{CacheSlots: 256, Allocation: cache.DefaultAllocation, LevelOptimization: true})
	ex, err := e.Explain(Query{From: f.hi - 6, To: f.hi})
	if err != nil {
		t.Fatal(err)
	}
	if ex.DiskReads == ex.Fetches {
		t.Skip("nothing cached for this window")
	}
	var buf bytes.Buffer
	ex.Print(&buf)
	if !strings.Contains(buf.String(), "(cache)") {
		t.Errorf("cached periods not marked in %q", buf.String())
	}
}

func TestTraceFields(t *testing.T) {
	f := getFixture(t)
	e := newEngine(t, f, Options{CacheSlots: 256, Allocation: cache.DefaultAllocation, LevelOptimization: true})

	res, err := e.Analyze(Query{From: f.lo, To: f.hi})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatal("untraced query carries a trace")
	}

	res, err = e.Analyze(Query{From: f.lo, To: f.hi, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if tr == nil {
		t.Fatal("traced query returned no trace")
	}
	if tr.CubesFetched != res.Stats.CubesFetched || tr.CacheHits != res.Stats.CacheHits ||
		tr.DiskReads != res.Stats.DiskReads {
		t.Errorf("trace totals %+v disagree with stats %+v", tr, res.Stats)
	}
	if tr.CubesFetched == 0 {
		t.Error("trace counted no cubes")
	}
	// The executed plan's level mix and bucket detail account for every fetch.
	sum := 0
	for _, n := range tr.PlanLevels {
		sum += n
	}
	if sum != tr.CubesFetched {
		t.Errorf("level mix sums to %d, want %d", sum, tr.CubesFetched)
	}
	periods := 0
	for _, b := range tr.Buckets {
		periods += len(b.Periods)
	}
	if periods != tr.CubesFetched {
		t.Errorf("bucket periods sum to %d, want %d", periods, tr.CubesFetched)
	}
	// The 70-day fixture window must engage more than one index level.
	if len(tr.PlanLevels) < 2 {
		t.Errorf("level optimizer used only %v over a 70-day window", tr.PlanLevels)
	}
	var names []string
	for _, s := range tr.Stages {
		if s.Nanos < 0 {
			t.Errorf("stage %s has negative duration", s.Name)
		}
		names = append(names, s.Name)
	}
	for _, want := range []string{"compile_filter", "plan", "aggregate", "build_rows"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("stage %q missing from %v", want, names)
		}
	}
	if tr.TotalNanos <= 0 {
		t.Error("trace has no total duration")
	}

	var buf bytes.Buffer
	tr.Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "trace: ") || !strings.Contains(out, "stage compile_filter") {
		t.Errorf("trace print missing sections: %q", out)
	}
}

// TestTraceWarmVsCold is the observable cache effect, end to end: a query over
// freshly appended (uncached) days reads pages from disk; after RefreshCache
// the identical query is served entirely from memory.
func TestTraceWarmVsCold(t *testing.T) {
	dir := t.TempDir()
	schema := cube.ScaledSchema(10, 5)
	ix, err := tindex.Create(dir, schema, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	ing := NewIngestor(ix)
	day := temporal.NewDay(2021, time.March, 1)
	rec := update.Record{ElementType: osm.Way, Day: day, Country: 1, RoadType: 1, UpdateType: update.Create}
	if err := ing.AppendDay(day, []update.Record{rec}); err != nil {
		t.Fatal(err)
	}

	e, err := NewEngine(ix, Options{CacheSlots: 64, Allocation: cache.Allocation{Alpha: 1}, LevelOptimization: true})
	if err != nil {
		t.Fatal(err)
	}

	// Days appended after preload are not cached: the traced query hits disk.
	for i := 1; i <= 5; i++ {
		r := rec
		r.Day = day + temporal.Day(i)
		if err := ing.AppendDay(r.Day, []update.Record{r}); err != nil {
			t.Fatal(err)
		}
	}
	q := Query{From: day, To: day + 5, Trace: true}
	cold, err := e.Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Trace.PageReads == 0 || cold.Trace.DiskReads == 0 {
		t.Fatalf("cold query should read from disk: %+v", cold.Trace)
	}

	if err := e.RefreshCache(); err != nil {
		t.Fatal(err)
	}
	warm, err := e.Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Trace.PageReads != 0 {
		t.Errorf("warm query read %d pages, want 0", warm.Trace.PageReads)
	}
	if warm.Trace.PageReads >= cold.Trace.PageReads {
		t.Errorf("warm reads %d not below cold reads %d", warm.Trace.PageReads, cold.Trace.PageReads)
	}
	if warm.Trace.CacheHits != warm.Trace.CubesFetched {
		t.Errorf("warm query not fully cached: %+v", warm.Trace)
	}
	if warm.Total != cold.Total {
		t.Errorf("warm total %d != cold total %d", warm.Total, cold.Total)
	}
}

func TestEngineMetricsCount(t *testing.T) {
	f := getFixture(t)
	e := newEngine(t, f, DefaultOptions())
	m := e.Metrics()
	q0, lat0 := m.Queries.Value(), m.QueryLatency.Count()
	for i := 0; i < 3; i++ {
		if _, err := e.Analyze(Query{From: f.lo, To: f.hi}); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Queries.Value() - q0; got != 3 {
		t.Errorf("queries counter advanced by %d, want 3", got)
	}
	if got := m.QueryLatency.Count() - lat0; got != 3 {
		t.Errorf("latency histogram counted %d, want 3", got)
	}
	errs0 := m.QueryErrors.Value()
	if _, err := e.Analyze(Query{From: f.hi, To: f.lo}); err == nil {
		t.Fatal("inverted window should fail")
	}
	if got := m.QueryErrors.Value() - errs0; got != 1 {
		t.Errorf("error counter advanced by %d, want 1", got)
	}
}
