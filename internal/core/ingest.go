package core

import (
	"fmt"
	"time"

	"rased/internal/cube"
	"rased/internal/geo"
	"rased/internal/obs"
	"rased/internal/temporal"
	"rased/internal/tindex"
	"rased/internal/update"
)

// IngestMetrics are the ingestion-side obs instruments. Records per second
// falls out of rased_ingest_records_total over time (or the records counter
// divided by the day-latency sum in a batch build).
type IngestMetrics struct {
	Days            *obs.Counter
	Records         *obs.Counter
	MonthsReplaced  *obs.Counter
	DroppedOffCube  *obs.Counter
	DayIngestTiming *obs.Histogram
}

func newIngestMetrics() *IngestMetrics {
	return &IngestMetrics{
		Days:            obs.NewCounter("rased_ingest_days_total", "Days appended to the index."),
		Records:         obs.NewCounter("rased_ingest_records_total", "Update records ingested into day cubes."),
		MonthsReplaced:  obs.NewCounter("rased_ingest_months_replaced_total", "Months rebuilt by the refinement crawl."),
		DroppedOffCube:  obs.NewCounter("rased_ingest_dropped_total", "Records outside the cube schema, skipped."),
		DayIngestTiming: obs.NewHistogram("rased_ingest_day_seconds", "Latency of appending one day (cube build + index maintenance).", nil),
	}
}

// All returns the instruments for registry wiring.
func (m *IngestMetrics) All() []obs.Metric {
	return []obs.Metric{m.Days, m.Records, m.MonthsReplaced, m.DroppedOffCube, m.DayIngestTiming}
}

// Ingestor turns crawled UpdateList records into day cubes and maintains the
// hierarchical index: the online half of the Storage and Indexing module
// (Section VI-A).
type Ingestor struct {
	ix  *tindex.Index
	reg *geo.Registry
	met *IngestMetrics

	dropped int
}

// NewIngestor wraps an index for ingestion.
func NewIngestor(ix *tindex.Index) *Ingestor {
	return &Ingestor{ix: ix, reg: geo.Default(), met: newIngestMetrics()}
}

// Metrics returns the ingestor's obs instruments for registry wiring.
func (in *Ingestor) Metrics() *IngestMetrics { return in.met }

// BuildDayCube aggregates one day's records into a cube, incrementing the
// leaf country cell and each enclosing zone cell per record.
func (in *Ingestor) BuildDayCube(day temporal.Day, recs []update.Record) (*cube.Cube, error) {
	cb := cube.New(in.ix.Schema())
	for i := range recs {
		r := &recs[i]
		if r.Day != day {
			return nil, fmt.Errorf("core: record dated %v in day %v batch", r.Day, day)
		}
		var zones []int
		if in.reg.IsLeafCountry(int(r.Country)) {
			zones = in.reg.ZonesOf(int(r.Country), r.Lat, r.Lon)
		}
		if !cb.AddRecord(r, zones) {
			in.dropped++
			in.met.DroppedOffCube.Inc()
		}
	}
	return cb, nil
}

// AppendDay builds and appends one day's cube (with end-of-period rollups).
func (in *Ingestor) AppendDay(day temporal.Day, recs []update.Record) error {
	start := time.Now()
	cb, err := in.BuildDayCube(day, recs)
	if err != nil {
		return err
	}
	if err := in.ix.AppendDay(day, cb); err != nil {
		return err
	}
	in.met.Days.Inc()
	in.met.Records.Add(int64(len(recs)))
	in.met.DayIngestTiming.Observe(time.Since(start))
	return nil
}

// ReplaceMonth is the monthly refinement (Section VI-A): the month's records,
// now carrying the full four-way update type, are regrouped into day cubes
// that overwrite the stored ones, and all ancestor cubes are rebuilt.
func (in *Ingestor) ReplaceMonth(month temporal.Period, recs []update.Record) error {
	if month.Level != temporal.Monthly {
		return fmt.Errorf("core: ReplaceMonth needs a monthly period, got %v", month)
	}
	byDay := make(map[temporal.Day][]update.Record)
	for _, r := range recs {
		if !month.Contains(r.Day) {
			return fmt.Errorf("core: record dated %v outside month %v", r.Day, month)
		}
		byDay[r.Day] = append(byDay[r.Day], r)
	}
	days := make(map[temporal.Day]*cube.Cube)
	for d := month.Start(); d <= month.End(); d++ {
		cb, err := in.BuildDayCube(d, byDay[d])
		if err != nil {
			return err
		}
		days[d] = cb
	}
	if err := in.ix.ReplaceDays(days); err != nil {
		return err
	}
	in.met.MonthsReplaced.Inc()
	return nil
}

// Dropped reports how many records fell outside the schema and were skipped
// (only possible with scaled-down schemas).
func (in *Ingestor) Dropped() int { return in.dropped }

// Coverage returns the index's covered day range.
func (in *Ingestor) Coverage() (lo, hi temporal.Day, ok bool) { return in.ix.Coverage() }

// Sync persists the index.
func (in *Ingestor) Sync() error { return in.ix.Sync() }
