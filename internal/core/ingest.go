package core

import (
	"fmt"

	"rased/internal/cube"
	"rased/internal/geo"
	"rased/internal/temporal"
	"rased/internal/tindex"
	"rased/internal/update"
)

// Ingestor turns crawled UpdateList records into day cubes and maintains the
// hierarchical index: the online half of the Storage and Indexing module
// (Section VI-A).
type Ingestor struct {
	ix  *tindex.Index
	reg *geo.Registry

	dropped int
}

// NewIngestor wraps an index for ingestion.
func NewIngestor(ix *tindex.Index) *Ingestor {
	return &Ingestor{ix: ix, reg: geo.Default()}
}

// BuildDayCube aggregates one day's records into a cube, incrementing the
// leaf country cell and each enclosing zone cell per record.
func (in *Ingestor) BuildDayCube(day temporal.Day, recs []update.Record) (*cube.Cube, error) {
	cb := cube.New(in.ix.Schema())
	for i := range recs {
		r := &recs[i]
		if r.Day != day {
			return nil, fmt.Errorf("core: record dated %v in day %v batch", r.Day, day)
		}
		var zones []int
		if in.reg.IsLeafCountry(int(r.Country)) {
			zones = in.reg.ZonesOf(int(r.Country), r.Lat, r.Lon)
		}
		if !cb.AddRecord(r, zones) {
			in.dropped++
		}
	}
	return cb, nil
}

// AppendDay builds and appends one day's cube (with end-of-period rollups).
func (in *Ingestor) AppendDay(day temporal.Day, recs []update.Record) error {
	cb, err := in.BuildDayCube(day, recs)
	if err != nil {
		return err
	}
	return in.ix.AppendDay(day, cb)
}

// ReplaceMonth is the monthly refinement (Section VI-A): the month's records,
// now carrying the full four-way update type, are regrouped into day cubes
// that overwrite the stored ones, and all ancestor cubes are rebuilt.
func (in *Ingestor) ReplaceMonth(month temporal.Period, recs []update.Record) error {
	if month.Level != temporal.Monthly {
		return fmt.Errorf("core: ReplaceMonth needs a monthly period, got %v", month)
	}
	byDay := make(map[temporal.Day][]update.Record)
	for _, r := range recs {
		if !month.Contains(r.Day) {
			return fmt.Errorf("core: record dated %v outside month %v", r.Day, month)
		}
		byDay[r.Day] = append(byDay[r.Day], r)
	}
	days := make(map[temporal.Day]*cube.Cube)
	for d := month.Start(); d <= month.End(); d++ {
		cb, err := in.BuildDayCube(d, byDay[d])
		if err != nil {
			return err
		}
		days[d] = cb
	}
	return in.ix.ReplaceDays(days)
}

// Dropped reports how many records fell outside the schema and were skipped
// (only possible with scaled-down schemas).
func (in *Ingestor) Dropped() int { return in.dropped }

// Coverage returns the index's covered day range.
func (in *Ingestor) Coverage() (lo, hi temporal.Day, ok bool) { return in.ix.Coverage() }

// Sync persists the index.
func (in *Ingestor) Sync() error { return in.ix.Sync() }
