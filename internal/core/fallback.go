package core

import (
	"context"
	"errors"
	"fmt"

	"rased/internal/cube"
	"rased/internal/temporal"
	"rased/internal/tindex"
)

// Degraded-mode execution: when a planned cube turns out to be unreadable
// mid-query — corrupt page, dead sector, exhausted retries — the engine does
// not fail the query. Rollup cubes are exact sums of their children (month =
// 4 fixed weeks + trailing days, week = 7 days, year = 12 months), so the
// coarse cube's contribution can be reconstructed bit-identically from its
// constituents at a measured extra-I/O cost. Only when a LEAF day is itself
// unreadable (or a constituent is missing entirely) is there nothing left to
// substitute, and the query fails with the typed ErrDegraded.
//
// The corrupt page is quarantined by tindex as a side effect of the failed
// fetch, so subsequent plans route around it up front; this file handles the
// query that was already in flight when the corruption surfaced.

// ErrDegraded reports a query that could not be answered exactly: a planned
// cube was unreadable and its constituents could not reconstruct it. Callers
// (the HTTP layer, the chaos harness) match it with errors.Is; the wrapped
// cause chain keeps the failing period and the underlying fault visible.
var ErrDegraded = errors.New("core: degraded: result unavailable")

// fallbackEligible reports whether a failed cube fetch may be replanned
// around. Cancellation is the caller giving up, not the storage failing; a
// missing cube (ErrNoCube) means the plan and index disagree, which
// substitution cannot repair honestly.
func fallbackEligible(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, tindex.ErrNoCube) {
		return false
	}
	return true
}

// planAvail is the availability view the level optimizer plans against.
// Quarantined rollup cubes are hidden (the plan routes to their constituents
// up front), but quarantined LEAF days stay visible: a day has no substitute,
// so hiding it would make the planner fail with an untyped coverage error —
// instead the plan includes the day and its fetch fails through the typed
// degraded path.
type planAvail struct{ ix *tindex.Index }

func (a planAvail) Has(p temporal.Period) bool {
	if p.Level == temporal.Daily {
		return a.ix.HasCube(p)
	}
	return a.ix.Has(p)
}

// fetchFallback reconstructs period p's cube from its constituent cubes
// after a failed fetch. The reconstruction recurses: a corrupt monthly cube
// is summed from its 4 weekly cubes plus trailing days, and if one of those
// weeklies is also unreadable, from that week's 7 dailies — bit-identical to
// the lost rollup, because rollups ARE these sums. Constituent fetches go
// through the normal cache/singleflight path, so the extra reads warm the
// cache for the replanned queries that follow.
func (e *Engine) fetchFallback(ctx context.Context, p temporal.Period, res *Result) (cube.Reader, error) {
	if p.Level == temporal.Daily {
		// A leaf failed; there is nothing finer to substitute.
		return nil, fmt.Errorf("core: leaf day %v unreadable: %w", p, ErrDegraded)
	}
	sum := cube.New(e.ix.Schema())
	if err := e.reconstruct(ctx, p, sum, res); err != nil {
		return nil, err
	}
	e.met.FallbackReplans.Inc()
	res.Stats.ReplannedPeriods++
	return sum, nil
}

// reconstruct folds every constituent cube of p into sum, recursing through
// constituents that are themselves unreadable.
func (e *Engine) reconstruct(ctx context.Context, p temporal.Period, sum *cube.Cube, res *Result) error {
	for _, c := range p.Children() {
		if err := ctx.Err(); err != nil {
			return err
		}
		fc, err := e.fetchCube(ctx, c)
		if err != nil {
			if errors.Is(err, tindex.ErrNoCube) {
				return fmt.Errorf("core: period %v: constituent %v missing: %w", p, c, ErrDegraded)
			}
			if !fallbackEligible(err) {
				return err
			}
			if c.Level == temporal.Daily {
				return fmt.Errorf("core: period %v: leaf day %v unreadable (%v): %w", p, c, err, ErrDegraded)
			}
			if err := e.reconstruct(ctx, c, sum, res); err != nil {
				return err
			}
			continue
		}
		res.Stats.FallbackCubes++
		e.met.FallbackCubes.Inc()
		if err := mergeReader(sum, fc.rd); err != nil {
			return fmt.Errorf("core: period %v: constituent %v: %w", p, c, err)
		}
	}
	return nil
}

// mergeReader adds a fetched cube (either a decoded *cube.Cube or a lazy
// page view) into sum. Materializing a view allocates, but this is the rare
// degraded path, not the hot path.
func mergeReader(sum *cube.Cube, rd cube.Reader) error {
	switch v := rd.(type) {
	case *cube.Cube:
		return sum.Merge(v)
	case *cube.PageView:
		return sum.Merge(v.Materialize())
	default:
		return fmt.Errorf("core: cannot merge cube reader %T", rd)
	}
}

// Health is the engine's degraded-mode status, surfaced by /healthz.
type Health struct {
	// Degraded is true while any index page is quarantined: answers are
	// still exact (served from constituent cubes), but at extra I/O cost,
	// and the operator should scrub or rebuild.
	Degraded         bool  `json:"degraded"`
	QuarantinedPages int   `json:"quarantined_pages,omitempty"`
	FallbackReplans  int64 `json:"fallback_replans,omitempty"`
	DegradedQueries  int64 `json:"degraded_queries,omitempty"`
}

// Health reports the engine's degraded-mode status.
func (e *Engine) Health() Health {
	q := e.ix.QuarantineCount()
	return Health{
		Degraded:         q > 0,
		QuarantinedPages: q,
		FallbackReplans:  e.met.FallbackReplans.Value(),
		DegradedQueries:  e.met.DegradedQueries.Value(),
	}
}
