package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"rased/internal/cache"
	"rased/internal/cube"
	"rased/internal/geo"
	"rased/internal/osm"
	"rased/internal/plan"
	"rased/internal/roads"
	"rased/internal/temporal"
	"rased/internal/tindex"
	"rased/internal/update"
)

// Options configures an Engine.
type Options struct {
	// CacheSlots is the number of cubes the cache pins in memory; 0 disables
	// caching (the paper's RASED-O variant).
	CacheSlots int
	// Allocation splits the cache slots across levels; zero value means
	// cache.DefaultAllocation.
	Allocation cache.Allocation
	// LevelOptimization enables the level optimizer; when false every query
	// reads daily cubes only (with a 1-level index this is the paper's
	// RASED-F variant).
	LevelOptimization bool
}

// DefaultOptions is the full RASED configuration.
func DefaultOptions() Options {
	return Options{
		CacheSlots:        512,
		Allocation:        cache.DefaultAllocation,
		LevelOptimization: true,
	}
}

// Engine answers analysis queries against a hierarchical temporal index.
type Engine struct {
	ix      *tindex.Index
	reg     *geo.Registry
	cache   *cache.Cache // nil when caching is disabled
	fetcher cache.Fetcher
	opts    Options
	met     *EngineMetrics

	mu        sync.RWMutex
	snapshots []sizeSnapshot // network sizes over time, sorted by AsOf
}

// sizeSnapshot is the per-country road-network size as of one day; the
// monthly crawler produces one per month, and Percentage(*) uses the snapshot
// in effect at the query window's end.
type sizeSnapshot struct {
	asOf  temporal.Day
	sizes map[int]uint64
}

// NewEngine builds an engine over an index. When opts.CacheSlots > 0 the
// cache is preloaded with the most recent cubes per the allocation.
func NewEngine(ix *tindex.Index, opts Options) (*Engine, error) {
	e := &Engine{
		ix:   ix,
		reg:  geo.Default(),
		opts: opts,
		met:  newEngineMetrics(),
	}
	if opts.CacheSlots > 0 {
		alloc := opts.Allocation
		if alloc == (cache.Allocation{}) {
			alloc = cache.DefaultAllocation
		}
		c, err := cache.New(opts.CacheSlots, alloc)
		if err != nil {
			return nil, err
		}
		if err := c.Preload(ix); err != nil {
			return nil, err
		}
		e.cache = c
	}
	e.fetcher = cache.Fetcher{Cache: e.cache, Src: ix}
	return e, nil
}

// Index returns the engine's underlying index.
func (e *Engine) Index() *tindex.Index { return e.ix }

// Cache returns the engine's cube cache, or nil when caching is disabled.
func (e *Engine) Cache() *cache.Cache { return e.cache }

// SetNetworkSizes installs a single per-country road-network size table used
// as the Percentage(*) denominator for every window (produced by
// crawl.NetworkSizes). It replaces any snapshot history.
func (e *Engine) SetNetworkSizes(sizes map[int]uint64) {
	e.mu.Lock()
	e.snapshots = e.snapshots[:0]
	e.mu.Unlock()
	e.AddNetworkSizeSnapshot(1<<30, sizes)
}

// AddNetworkSizeSnapshot records the network sizes as of a day. Percentage
// queries use the latest snapshot at or before the query window's end, so a
// two-year-old window is normalized by the network as it was then.
func (e *Engine) AddNetworkSizeSnapshot(asOf temporal.Day, sizes map[int]uint64) {
	cp := make(map[int]uint64, len(sizes))
	for k, v := range sizes {
		cp[k] = v
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	i := sort.Search(len(e.snapshots), func(i int) bool { return e.snapshots[i].asOf >= asOf })
	if i < len(e.snapshots) && e.snapshots[i].asOf == asOf {
		e.snapshots[i].sizes = cp
		return
	}
	e.snapshots = append(e.snapshots, sizeSnapshot{})
	copy(e.snapshots[i+1:], e.snapshots[i:])
	e.snapshots[i] = sizeSnapshot{asOf: asOf, sizes: cp}
}

// sizesAsOf returns the snapshot in effect on day d: the latest at or before
// d, or the earliest available when d predates them all. Callers hold e.mu.
func (e *Engine) sizesAsOf(d temporal.Day) map[int]uint64 {
	if len(e.snapshots) == 0 {
		return nil
	}
	i := sort.Search(len(e.snapshots), func(i int) bool { return e.snapshots[i].asOf > d })
	if i == 0 {
		return e.snapshots[0].sizes
	}
	return e.snapshots[i-1].sizes
}

// NetworkSize returns the latest stored road-network size of a country
// catalog value.
func (e *Engine) NetworkSize(country int) uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if len(e.snapshots) == 0 {
		return 0
	}
	return e.snapshots[len(e.snapshots)-1].sizes[country]
}

// NetworkSizeAsOf returns the road-network size of a country in the snapshot
// covering day d.
func (e *Engine) NetworkSizeAsOf(country int, d temporal.Day) uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.sizesAsOf(d)[country]
}

// RefreshCache re-preloads the cache after index maintenance.
func (e *Engine) RefreshCache() error {
	if e.cache == nil {
		return nil
	}
	return e.cache.Preload(e.ix)
}

// maxLevel returns the highest level the optimizer may use.
func (e *Engine) maxLevel() temporal.Level {
	if !e.opts.LevelOptimization {
		return temporal.Daily
	}
	return temporal.Level(e.ix.Levels() - 1)
}

// clip restricts [from, to] to index coverage. ok is false when they do not
// intersect.
func (e *Engine) clip(from, to temporal.Day) (lo, hi temporal.Day, ok bool) {
	cLo, cHi, has := e.ix.Coverage()
	if !has {
		return 0, 0, false
	}
	if from > cHi || to < cLo {
		return 0, 0, false
	}
	if from < cLo {
		from = cLo
	}
	if to > cHi {
		to = cHi
	}
	return from, to, from <= to
}

// rowKey extends the cube group key with the optional date bucket.
type rowKey struct {
	k         cube.Key
	p         temporal.Period // zero Period (Daily,0 means day 0) — use valid flag
	hasPeriod bool
}

// Analyze executes an analysis query. When q.Trace is set the result carries
// a QueryTrace recording the executed plan, cache residency, page I/O, and
// stage timings.
func (e *Engine) Analyze(q Query) (*Result, error) {
	start := time.Now()
	var tb *traceBuilder // nil (all methods no-op) unless tracing is on
	if q.Trace {
		tb = e.newTraceBuilder()
	}
	res, err := e.analyze(q, tb)
	if err != nil {
		e.met.QueryErrors.Inc()
		return nil, err
	}
	e.met.Queries.Inc()
	res.Stats.ElapsedNanos = time.Since(start).Nanoseconds()
	e.met.QueryLatency.Observe(time.Duration(res.Stats.ElapsedNanos))
	tb.finish(e, res)
	return res, nil
}

// analyze is the Analyze body; the wrapper owns timing, query metrics, and
// trace finalization.
func (e *Engine) analyze(q Query, tb *traceBuilder) (*Result, error) {
	if q.To < q.From {
		return nil, fmt.Errorf("core: query window [%s, %s] is inverted", q.From, q.To)
	}
	endStage := tb.stage("compile_filter")
	filter, err := CompileFilter(&q, e.reg)
	endStage()
	if err != nil {
		return nil, err
	}
	gb := cubeGroupBy(q.GroupBy)

	res := &Result{}
	lo, hi, ok := e.clip(q.From, q.To)
	if !ok {
		return res, nil
	}

	groups := make(map[rowKey]uint64)
	if q.GroupBy.Date == None {
		endStage = tb.stage("plan")
		pl, err := e.planWindow(lo, hi)
		endStage()
		if err != nil {
			return nil, err
		}
		endStage = tb.stage("aggregate")
		err = e.aggregatePlan(pl, filter, gb, rowKey{}, groups, res, tb)
		endStage()
		if err != nil {
			return nil, err
		}
	} else {
		// Date-grouped query: one bucket per period at the requested
		// granularity; each bucket is covered independently (partial edge
		// buckets decompose into finer cubes).
		endStage = tb.stage("aggregate")
		lvl := q.GroupBy.Date.Level()
		for _, b := range dateBuckets(lvl, lo, hi) {
			bucket := rowKey{p: b.p, hasPeriod: true}
			if b.lo == b.p.Start() && b.hi == b.p.End() && e.ix.Has(b.p) {
				if err := e.aggregatePeriods(filter, gb, bucket, groups, res, tb, b.p); err != nil {
					endStage()
					return nil, err
				}
				continue
			}
			pl, err := plan.Optimize(b.lo, b.hi, e.maxLevelBelow(lvl), e.ix, e.cacheView())
			if err != nil {
				endStage()
				return nil, err
			}
			e.met.PlanPeriods.ObserveValue(float64(len(pl.Periods)))
			if err := e.aggregatePlan(pl, filter, gb, bucket, groups, res, tb); err != nil {
				endStage()
				return nil, err
			}
		}
		endStage()
	}

	endStage = tb.stage("build_rows")
	e.buildRows(res, groups, &q)
	endStage()
	return res, nil
}

// dateBucket is one time bucket of a date-grouped query: the labeling period
// and the day range it aggregates (clipped to the query window).
type dateBucket struct {
	p      temporal.Period
	lo, hi temporal.Day
}

// dateBuckets partitions [lo, hi] into buckets at the given level. Weekly
// buckets fold each month's trailing days (29-31) into that month's fourth
// week, so the bucketing is exhaustive.
func dateBuckets(lvl temporal.Level, lo, hi temporal.Day) []dateBucket {
	var out []dateBucket
	if lvl != temporal.Weekly {
		for _, p := range temporal.PeriodsBetween(lvl, lo, hi) {
			b := dateBucket{p: p, lo: p.Start(), hi: p.End()}
			if b.lo < lo {
				b.lo = lo
			}
			if b.hi > hi {
				b.hi = hi
			}
			out = append(out, b)
		}
		return out
	}
	for _, m := range temporal.PeriodsBetween(temporal.Monthly, lo, hi) {
		for i, w := range m.Children() {
			if i >= 4 {
				break // trailing days belong to week 4
			}
			b := dateBucket{p: w, lo: w.Start(), hi: w.End()}
			if i == 3 {
				b.hi = m.End() // fold trailing days into week 4
			}
			if b.hi < lo || b.lo > hi {
				continue
			}
			if b.lo < lo {
				b.lo = lo
			}
			if b.hi > hi {
				b.hi = hi
			}
			out = append(out, b)
		}
	}
	return out
}

// cacheView adapts the cache for the planner; nil when caching is off.
func (e *Engine) cacheView() plan.CacheView {
	if e.cache == nil {
		return nil
	}
	return e.cache
}

// planWindow runs the level optimizer (or the flat plan) over [lo, hi].
func (e *Engine) planWindow(lo, hi temporal.Day) (*plan.Plan, error) {
	var pl *plan.Plan
	var err error
	if !e.opts.LevelOptimization {
		pl, err = plan.Flat(lo, hi, e.ix, e.cacheView())
	} else {
		pl, err = plan.Optimize(lo, hi, e.maxLevel(), e.ix, e.cacheView())
	}
	if err == nil {
		e.met.PlanPeriods.ObserveValue(float64(len(pl.Periods)))
	}
	return pl, err
}

// maxLevelBelow caps the optimizer at strictly finer levels than lvl, so a
// date-grouped bucket never reads a cube coarser than its own granularity.
func (e *Engine) maxLevelBelow(lvl temporal.Level) temporal.Level {
	max := e.maxLevel()
	if lvl > temporal.Daily && lvl-1 < max {
		max = lvl - 1
	}
	if !e.opts.LevelOptimization {
		max = temporal.Daily
	}
	return max
}

// aggregatePlan fetches every period of a plan and folds it into groups under
// the bucket's date key.
func (e *Engine) aggregatePlan(pl *plan.Plan, f cube.Filter, gb cube.GroupBy,
	bucket rowKey, groups map[rowKey]uint64, res *Result, tb *traceBuilder) error {
	return e.aggregatePeriods(f, gb, bucket, groups, res, tb, pl.Periods...)
}

func (e *Engine) aggregatePeriods(f cube.Filter, gb cube.GroupBy,
	bucket rowKey, groups map[rowKey]uint64, res *Result, tb *traceBuilder, periods ...temporal.Period) error {
	scratch := make(map[cube.Key]uint64)
	for _, p := range periods {
		cached := e.cache != nil && e.cache.Contains(p)
		cb, err := e.fetcher.Fetch(p)
		if err != nil {
			return err
		}
		res.Stats.CubesFetched++
		e.met.CubesRead[p.Level].Inc()
		tb.addPeriod(bucket, p, cached)
		if cached {
			res.Stats.CacheHits++
		} else {
			res.Stats.DiskReads++
		}
		for k := range scratch {
			delete(scratch, k)
		}
		total := cb.AggregateInto(f, gb, scratch)
		res.Total += total
		for k, v := range scratch {
			rk := bucket
			rk.k = k
			groups[rk] += v
		}
	}
	return nil
}

// buildRows converts the group map into named, sorted rows, applying the
// percentage transform when requested.
func (e *Engine) buildRows(res *Result, groups map[rowKey]uint64, q *Query) {
	rows := make([]Row, 0, len(groups))
	for rk, count := range groups {
		r := Row{Count: count}
		if rk.k.Element >= 0 {
			r.ElementType = osm.ElementType(rk.k.Element).String()
		}
		if rk.k.Country >= 0 {
			r.Country = e.reg.Name(int(rk.k.Country))
		}
		if rk.k.RoadType >= 0 {
			r.RoadType = roads.Name(int(rk.k.RoadType))
		}
		if rk.k.Update >= 0 {
			r.UpdateType = update.Type(rk.k.Update).String()
		}
		if rk.hasPeriod {
			r.Period = rk.p.String()
		}
		if q.Percentage {
			r.Percentage = e.percentage(count, rk, q)
		}
		rows = append(rows, r)
	}
	sortRows(rows)
	res.Rows = rows
}

// sortRows orders rows by period, count descending, then dimension names.
func sortRows(rows []Row) {
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].Period != rows[b].Period {
			return rows[a].Period < rows[b].Period
		}
		if rows[a].Count != rows[b].Count {
			return rows[a].Count > rows[b].Count
		}
		if rows[a].Country != rows[b].Country {
			return rows[a].Country < rows[b].Country
		}
		if rows[a].ElementType != rows[b].ElementType {
			return rows[a].ElementType < rows[b].ElementType
		}
		if rows[a].RoadType != rows[b].RoadType {
			return rows[a].RoadType < rows[b].RoadType
		}
		return rows[a].UpdateType < rows[b].UpdateType
	})
}

// percentage computes count as a percentage of the road network size of the
// row's country (or of the filtered countries, or the whole world), using
// the size snapshot in effect at the query window's end (or at the row's
// bucket end for date-grouped queries).
func (e *Engine) percentage(count uint64, rk rowKey, q *Query) float64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	asOf := q.To
	if rk.hasPeriod {
		asOf = rk.p.End()
	}
	sizes := e.sizesAsOf(asOf)
	if sizes == nil {
		return 0
	}
	var denom uint64
	switch {
	case rk.k.Country >= 0:
		denom = sizes[int(rk.k.Country)]
	case q.Countries != nil:
		for _, n := range q.Countries {
			if v, ok := e.reg.ByName(n); ok {
				denom += sizes[v]
			}
		}
	default:
		denom = sizes[e.reg.WorldValue()]
	}
	if denom == 0 {
		return 0
	}
	return float64(count) / float64(denom) * 100
}
