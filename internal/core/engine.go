package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rased/internal/cache"
	"rased/internal/cube"
	"rased/internal/exec"
	"rased/internal/geo"
	"rased/internal/osm"
	"rased/internal/plan"
	"rased/internal/roads"
	"rased/internal/temporal"
	"rased/internal/tindex"
	"rased/internal/update"
)

// Options configures an Engine.
type Options struct {
	// CacheSlots is the number of cubes the cache pins in memory; 0 disables
	// caching (the paper's RASED-O variant).
	CacheSlots int
	// Allocation splits the cache slots across levels; zero value means
	// cache.DefaultAllocation.
	Allocation cache.Allocation
	// LevelOptimization enables the level optimizer; when false every query
	// reads daily cubes only (with a 1-level index this is the paper's
	// RASED-F variant).
	LevelOptimization bool
	// FetchWorkers bounds how many cube fetches run concurrently across all
	// in-flight queries (the shared exec.Pool). 0 or 1 fetches serially.
	FetchWorkers int
	// Singleflight deduplicates identical concurrent cube fetches across
	// queries: overlapping dashboards cost one disk pass per page.
	Singleflight bool
	// MaxInflight bounds concurrently executing queries (admission control);
	// 0 admits everything.
	MaxInflight int
	// MaxQueue bounds queries waiting for admission when MaxInflight is
	// reached; beyond it AnalyzeContext fails fast with exec.ErrRejected.
	MaxQueue int
	// CachePolicy selects the cube cache: "preload" (default, the paper's
	// statically preloaded recency cache), "lru" (demand-filled, single
	// mutex), or "sharded" (demand-filled, hash-sharded for concurrent
	// access).
	CachePolicy string
	// CacheShards is the shard count per level for the "sharded" policy;
	// 0 picks one per CPU (rounded up to a power of two).
	CacheShards int
	// CacheBytes caps the demand cache's resident cube bytes (0 = no byte
	// cap; slots alone bound the cache). Compressed cold-tier readers are far
	// smaller than dense cubes, so a byte budget lets the same memory
	// envelope hold much more compacted history. Demand policies only.
	CacheBytes int64
	// PooledDecode decodes cache misses into pooled cubes instead of
	// allocating a page buffer and cube per miss. Requires a demand cache
	// policy ("lru" or "sharded"): decoded cubes are donated to the cache,
	// which must own their lifecycle (see DESIGN.md, "Hot-path memory
	// model").
	PooledDecode bool
	// CoalesceReads merges plan fetches whose pages are adjacent on disk
	// into single multi-page reads: one syscall and one disk-latency charge
	// per run instead of per page.
	CoalesceReads bool
	// ScalarKernels disables the vectorized aggregation kernels, running
	// every cube through the scalar reference loop (the pre-optimization
	// baseline, kept for benchmarks and cross-checks).
	ScalarKernels bool
	// ReadRetries is how many extra attempts the index makes when a page
	// read fails transiently (wrapping pagestore.ErrTransient), with
	// jittered exponential backoff starting at ReadRetryBackoff. 0 (the
	// zero-value default) disables retry.
	ReadRetries int
	// ReadRetryBackoff is the base delay before the first read retry.
	ReadRetryBackoff time.Duration
	// DegradedFallback replans around cubes that fail to read mid-query:
	// a corrupt monthly cube is answered from its weekly + daily
	// constituents (bit-identical, at extra I/O cost), and only an
	// unreadable leaf day fails the query — with the typed ErrDegraded.
	// Off in the zero value; on in DefaultOptions.
	DegradedFallback bool
	// QoSPriority switches admission control to the class-priority
	// discipline: freed slots go to the highest-priority waiting traffic
	// class (interactive > api > bulk, read from the query context) instead
	// of arrival order. Requires MaxInflight > 0.
	QoSPriority bool
	// TenantRate enables per-tenant token-bucket rate limiting at this many
	// queries per second per tenant (burst TenantBurst); 0 disables. Over-
	// limit queries fail fast with exec.ErrThrottled before consuming an
	// admission slot.
	TenantRate  float64
	TenantBurst float64
	// TenantMaxTracked bounds the limiter's per-tenant state (0 = default).
	TenantMaxTracked int
	// ResultCacheTTL enables the epoch-stamped whole-result cache: identical
	// queries repeated within the TTL (and the same index epoch) are served
	// without execution. 0 disables. See exec.ResultCache for the live-fold
	// invalidation contract.
	ResultCacheTTL time.Duration
	// ResultCacheSlots bounds the result cache's entry count.
	ResultCacheSlots int
}

// DefaultOptions is the full RASED configuration.
func DefaultOptions() Options {
	return Options{
		CacheSlots:        512,
		Allocation:        cache.DefaultAllocation,
		LevelOptimization: true,
		FetchWorkers:      runtime.GOMAXPROCS(0),
		Singleflight:      true,
		ReadRetries:       2,
		ReadRetryBackoff:  2 * time.Millisecond,
		DegradedFallback:  true,
	}
}

// demandCache is the interface the engine needs from a demand-filled cube
// cache; *cache.LRU and *cache.Sharded both satisfy it.
type demandCache interface {
	Get(p temporal.Period) (cube.Reader, bool)
	GetAtLeast(p temporal.Period, minEpoch uint64) (cube.Reader, bool)
	Put(p temporal.Period, cb cube.Reader)
	PutEpoch(p temporal.Period, cb cube.Reader, epoch uint64)
	PutCold(p temporal.Period, cb cube.Reader)
	PutColdEpoch(p temporal.Period, cb cube.Reader, epoch uint64)
	Contains(p temporal.Period) bool
	Stats() cache.Stats
	ResetStats()
	Metrics() *cache.Metrics
}

// Engine answers analysis queries against a hierarchical temporal index.
type Engine struct {
	ix     *tindex.Index
	reg    *geo.Registry
	cache  *cache.Cache // non-nil only under the "preload" policy
	demand demandCache  // non-nil only under the "lru"/"sharded" policies
	opts   Options
	met    *EngineMetrics

	pool    *exec.Pool          // nil: serial fetches
	flight  *exec.Group         // nil: no cross-query fetch dedup
	adm     *exec.Controller    // nil: admit everything
	limiter *exec.TenantLimiter // nil: no per-tenant rate limit
	rcache  *exec.ResultCache   // nil: no whole-result caching

	mu        sync.RWMutex
	snapshots []sizeSnapshot // network sizes over time, sorted by AsOf

	// Live-ingest freshness state (see live.go). liveOn gates the per-probe
	// map lookup so batch deployments pay one atomic load; liveReq maps each
	// live-updated period to the minimum epoch a cache hit must carry.
	liveOn  atomic.Bool
	liveMu  sync.RWMutex
	liveReq map[temporal.Period]uint64
}

// sizeSnapshot is the per-country road-network size as of one day; the
// monthly crawler produces one per month, and Percentage(*) uses the snapshot
// in effect at the query window's end.
type sizeSnapshot struct {
	asOf  temporal.Day
	sizes map[int]uint64
}

// NewEngine builds an engine over an index. When opts.CacheSlots > 0 the
// cache is preloaded with the most recent cubes per the allocation.
func NewEngine(ix *tindex.Index, opts Options) (*Engine, error) {
	e := &Engine{
		ix:   ix,
		reg:  geo.Default(),
		opts: opts,
		met:  newEngineMetrics(),
	}
	policy := opts.CachePolicy
	if policy == "" {
		policy = "preload"
	}
	if opts.PooledDecode && (policy != "lru" && policy != "sharded") {
		return nil, fmt.Errorf("core: PooledDecode requires a demand cache policy (lru or sharded), got %q", policy)
	}
	if opts.PooledDecode && opts.CacheSlots <= 0 {
		// Pooled decode donates every decoded cube to the demand cache; with
		// no cache there is no owner to donate to and every miss would leak
		// its pooled scratch cube.
		return nil, fmt.Errorf("core: PooledDecode requires CacheSlots > 0 (decoded cubes are donated to the cache)")
	}
	if opts.ReadRetries < 0 {
		return nil, fmt.Errorf("core: ReadRetries must be >= 0, got %d", opts.ReadRetries)
	}
	if opts.CacheBytes < 0 {
		return nil, fmt.Errorf("core: CacheBytes must be >= 0, got %d", opts.CacheBytes)
	}
	if opts.CacheBytes > 0 && (policy == "preload" || opts.CacheSlots <= 0) {
		return nil, fmt.Errorf("core: CacheBytes requires a demand cache policy (lru or sharded) with CacheSlots > 0")
	}
	if opts.ReadRetries > 0 {
		ix.SetRetryPolicy(tindex.RetryPolicy{Attempts: opts.ReadRetries, Backoff: opts.ReadRetryBackoff})
	}
	if opts.CacheSlots > 0 {
		alloc := opts.Allocation
		if alloc == (cache.Allocation{}) {
			alloc = cache.DefaultAllocation
		}
		switch policy {
		case "preload":
			c, err := cache.New(opts.CacheSlots, alloc)
			if err != nil {
				return nil, err
			}
			if err := c.Preload(ix); err != nil {
				return nil, err
			}
			e.cache = c
		case "lru":
			l, err := cache.NewLRU(opts.CacheSlots)
			if err != nil {
				return nil, err
			}
			if opts.CacheBytes > 0 {
				l.SetByteBudget(opts.CacheBytes)
			}
			e.demand = l
		case "sharded":
			s, err := cache.NewSharded(opts.CacheSlots, alloc, opts.CacheShards)
			if err != nil {
				return nil, err
			}
			if opts.CacheBytes > 0 {
				s.SetByteBudget(opts.CacheBytes)
			}
			e.demand = s
		default:
			return nil, fmt.Errorf("core: unknown cache policy %q", opts.CachePolicy)
		}
	}
	e.pool = exec.NewPool(opts.FetchWorkers)
	if opts.Singleflight {
		e.flight = exec.NewGroup()
	}
	if opts.QoSPriority {
		if opts.MaxInflight < 1 {
			return nil, fmt.Errorf("core: QoSPriority requires MaxInflight > 0 (priority needs a bound to schedule against)")
		}
		e.adm = exec.NewPriorityController(opts.MaxInflight, opts.MaxQueue)
	} else {
		e.adm = exec.NewController(opts.MaxInflight, opts.MaxQueue)
	}
	e.limiter = exec.NewTenantLimiter(opts.TenantRate, opts.TenantBurst, opts.TenantMaxTracked)
	e.rcache = exec.NewResultCache(opts.ResultCacheTTL, opts.ResultCacheSlots)
	return e, nil
}

// Index returns the engine's underlying index.
func (e *Engine) Index() *tindex.Index { return e.ix }

// Cache returns the engine's preloaded cube cache, or nil when caching is
// disabled or a demand policy is active.
func (e *Engine) Cache() *cache.Cache { return e.cache }

// CacheMetrics returns the obs instruments of whichever cache policy is
// active, or nil when caching is disabled.
func (e *Engine) CacheMetrics() *cache.Metrics {
	if e.cache != nil {
		return e.cache.Metrics()
	}
	if e.demand != nil {
		return e.demand.Metrics()
	}
	return nil
}

// CacheStats returns hit/miss/eviction counters of the active cache; ok is
// false when caching is disabled.
func (e *Engine) CacheStats() (cache.Stats, bool) {
	if e.cache != nil {
		return e.cache.Stats(), true
	}
	if e.demand != nil {
		return e.demand.Stats(), true
	}
	return cache.Stats{}, false
}

// cacheGet probes the active cache, counting a hit or miss. For a period the
// live pipeline has republished, a demand-cache hit must be at least as fresh
// as the required epoch; a preload hit is refused outright (the preload cache
// is read-only at query time, so it can never be refreshed — MarkLiveUpdate
// already invalidated the entry, this guards the refill-free window).
func (e *Engine) cacheGet(p temporal.Period) (cube.Reader, bool) {
	req := e.requiredEpoch(p)
	if e.cache != nil {
		if req > 0 {
			return nil, false
		}
		return e.cache.Get(p)
	}
	if e.demand != nil {
		if req > 0 {
			return e.demand.GetAtLeast(p, req)
		}
		return e.demand.Get(p)
	}
	return nil, false
}

// cachePut fills the demand cache, stamping the entry with the index epoch
// the content is known to be at least as fresh as; preload caches are
// read-only at query time, so this is a no-op under the preload policy.
func (e *Engine) cachePut(p temporal.Period, rd cube.Reader, epoch uint64) {
	if e.demand != nil {
		e.demand.PutEpoch(p, rd, epoch)
	}
}

// cachePutCold admits a run-fetched cube at the demand cache's cold end:
// scanned pages must not displace the hot working set (see LRU.PutCold).
func (e *Engine) cachePutCold(p temporal.Period, rd cube.Reader, epoch uint64) {
	if e.demand != nil {
		e.demand.PutColdEpoch(p, rd, epoch)
	}
}

// cacheContains reports residency in the active cache without touching the
// hit/miss counters or recency order.
func (e *Engine) cacheContains(p temporal.Period) bool {
	if e.cache != nil {
		return e.cache.Contains(p)
	}
	if e.demand != nil {
		return e.demand.Contains(p)
	}
	return false
}

// SetNetworkSizes installs a single per-country road-network size table used
// as the Percentage(*) denominator for every window (produced by
// crawl.NetworkSizes). It replaces any snapshot history.
func (e *Engine) SetNetworkSizes(sizes map[int]uint64) {
	e.mu.Lock()
	e.snapshots = e.snapshots[:0]
	e.mu.Unlock()
	e.AddNetworkSizeSnapshot(1<<30, sizes)
}

// AddNetworkSizeSnapshot records the network sizes as of a day. Percentage
// queries use the latest snapshot at or before the query window's end, so a
// two-year-old window is normalized by the network as it was then.
func (e *Engine) AddNetworkSizeSnapshot(asOf temporal.Day, sizes map[int]uint64) {
	cp := make(map[int]uint64, len(sizes))
	for k, v := range sizes {
		cp[k] = v
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	i := sort.Search(len(e.snapshots), func(i int) bool { return e.snapshots[i].asOf >= asOf })
	if i < len(e.snapshots) && e.snapshots[i].asOf == asOf {
		e.snapshots[i].sizes = cp
		return
	}
	e.snapshots = append(e.snapshots, sizeSnapshot{})
	copy(e.snapshots[i+1:], e.snapshots[i:])
	e.snapshots[i] = sizeSnapshot{asOf: asOf, sizes: cp}
}

// sizesAsOf returns the snapshot in effect on day d: the latest at or before
// d, or the earliest available when d predates them all. Callers hold e.mu.
func (e *Engine) sizesAsOf(d temporal.Day) map[int]uint64 {
	if len(e.snapshots) == 0 {
		return nil
	}
	i := sort.Search(len(e.snapshots), func(i int) bool { return e.snapshots[i].asOf > d })
	if i == 0 {
		return e.snapshots[0].sizes
	}
	return e.snapshots[i-1].sizes
}

// NetworkSize returns the latest stored road-network size of a country
// catalog value.
func (e *Engine) NetworkSize(country int) uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if len(e.snapshots) == 0 {
		return 0
	}
	return e.snapshots[len(e.snapshots)-1].sizes[country]
}

// NetworkSizeAsOf returns the road-network size of a country in the snapshot
// covering day d.
func (e *Engine) NetworkSizeAsOf(country int, d temporal.Day) uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.sizesAsOf(d)[country]
}

// RefreshCache re-preloads the cache after index maintenance.
func (e *Engine) RefreshCache() error {
	if e.cache == nil {
		return nil
	}
	return e.cache.Preload(e.ix)
}

// maxLevel returns the highest level the optimizer may use.
func (e *Engine) maxLevel() temporal.Level {
	if !e.opts.LevelOptimization {
		return temporal.Daily
	}
	return temporal.Level(e.ix.Levels() - 1)
}

// clip restricts [from, to] to index coverage. ok is false when they do not
// intersect.
func (e *Engine) clip(from, to temporal.Day) (lo, hi temporal.Day, ok bool) {
	cLo, cHi, has := e.ix.Coverage()
	if !has {
		return 0, 0, false
	}
	if from > cHi || to < cLo {
		return 0, 0, false
	}
	if from < cLo {
		from = cLo
	}
	if to > cHi {
		to = cHi
	}
	return from, to, from <= to
}

// rowKey extends the cube group key with the optional date bucket.
type rowKey struct {
	k         cube.Key
	p         temporal.Period // zero Period (Daily,0 means day 0) — use valid flag
	hasPeriod bool
}

// Analyze executes an analysis query. When q.Trace is set the result carries
// a QueryTrace recording the executed plan, cache residency, page I/O, and
// stage timings.
func (e *Engine) Analyze(q Query) (*Result, error) {
	return e.AnalyzeContext(context.Background(), q)
}

// AnalyzeContext is Analyze under a context: the query first passes admission
// control (a full queue fails fast with exec.ErrRejected; a context that ends
// while queued returns its error), and cancellation mid-execution stops
// further cube fetches and returns ctx.Err(). Admission wait is excluded from
// the reported query latency.
func (e *Engine) AnalyzeContext(ctx context.Context, q Query) (*Result, error) {
	return e.analyzeAdmitted(ctx, q, nil)
}

// analyzeAdmitted is the shared body of AnalyzeContext and
// AnalyzePartitionContext: admission, timing, query metrics, and trace
// finalization around one analyze call. restrict is nil for whole-query
// execution (see partition.go for the restricted form).
func (e *Engine) analyzeAdmitted(ctx context.Context, q Query, restrict *restriction) (*Result, error) {
	// Per-tenant rate limit first: an over-budget tenant is shed before it
	// can touch the result cache or an admission slot.
	if err := e.limiter.Allow(exec.TenantFrom(ctx)); err != nil {
		return nil, err
	}
	// Result-cache probe before admission: identical-query repeats must not
	// queue behind the executions they would duplicate. The epoch is loaded
	// once here — it is both the hit-freshness floor and, after a miss, the
	// conservative stamp for the computed result (loaded before execution,
	// as in fetchDisk).
	ckey, cacheable := e.resultCacheKey(q, restrict)
	var epoch uint64
	if cacheable {
		epoch = e.ix.Epoch()
		if v, ok := e.rcache.Get(ckey, epoch); ok {
			e.met.Queries.Inc()
			return cachedResult(v.(*Result)), nil
		}
	}
	release, err := e.adm.Acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	start := time.Now()
	var tb *traceBuilder // nil (all methods no-op) unless tracing is on
	if q.Trace {
		tb = e.newTraceBuilder()
	}
	res, err := e.analyze(ctx, q, tb, restrict)
	if err != nil {
		e.met.QueryErrors.Inc()
		if errors.Is(err, ErrDegraded) {
			e.met.DegradedQueries.Inc()
		}
		return nil, err
	}
	e.met.Queries.Inc()
	res.Stats.ElapsedNanos = time.Since(start).Nanoseconds()
	e.met.QueryLatency.Observe(time.Duration(res.Stats.ElapsedNanos))
	tb.finish(e, res)
	if cacheable {
		e.storeResult(ckey, epoch, res)
	}
	return res, nil
}

// analyze is the Analyze body; the wrapper owns admission, timing, query
// metrics, and trace finalization. A non-nil restrict intersects the compiled
// country filter with a set of allowed catalog values and narrows the
// executed window (partition-restricted execution) — the query itself stays
// untouched, so Percentage denominators and their as-of snapshot day are the
// ones the whole query would use. An empty intersection short-circuits to an
// empty result.
func (e *Engine) analyze(ctx context.Context, q Query, tb *traceBuilder, restrict *restriction) (*Result, error) {
	if q.To < q.From {
		return nil, fmt.Errorf("core: query window [%s, %s] is inverted", q.From, q.To)
	}
	endStage := tb.stage("compile_filter")
	filter, err := CompileFilter(&q, e.reg)
	endStage()
	if err != nil {
		return nil, err
	}
	if restrict != nil {
		filter.Countries = restrictCountries(filter.Countries, restrict.countries)
		if len(filter.Countries) == 0 {
			return &Result{}, nil
		}
	}
	gb := cubeGroupBy(q.GroupBy)

	res := &Result{}
	lo, hi, ok := e.clip(q.From, q.To)
	if !ok {
		return res, nil
	}
	if restrict != nil && restrict.windowed {
		if restrict.lo > lo {
			lo = restrict.lo
		}
		if restrict.hi < hi {
			hi = restrict.hi
		}
		if lo > hi {
			return res, nil
		}
	}

	// Compile the aggregation once per query: filter masks are resolved and
	// the kernel shape dispatched here, not per cube. The merge loop is
	// serial, so one plan (with its scratch buffers) serves every period.
	var ap *cube.AggPlan
	if !e.opts.ScalarKernels {
		ap = cube.CompileAgg(e.ix.Schema(), filter, gb)
	}

	groups := make(map[rowKey]uint64)
	if q.GroupBy.Date == None {
		endStage = tb.stage("plan")
		pl, err := e.planWindow(lo, hi)
		endStage()
		if err != nil {
			return nil, err
		}
		endStage = tb.stage("aggregate")
		err = e.aggregatePlan(ctx, pl, filter, gb, ap, rowKey{}, groups, res, tb)
		endStage()
		if err != nil {
			return nil, err
		}
	} else {
		// Date-grouped query: one bucket per period at the requested
		// granularity; each bucket is covered independently (partial edge
		// buckets decompose into finer cubes).
		endStage = tb.stage("aggregate")
		lvl := q.GroupBy.Date.Level()
		for _, b := range dateBuckets(lvl, lo, hi) {
			bucket := rowKey{p: b.p, hasPeriod: true}
			if b.lo == b.p.Start() && b.hi == b.p.End() && e.ix.Has(b.p) {
				if err := e.aggregatePeriods(ctx, filter, gb, ap, bucket, groups, res, tb, b.p); err != nil {
					endStage()
					return nil, err
				}
				continue
			}
			pl, err := plan.Optimize(b.lo, b.hi, e.maxLevelBelow(lvl), planAvail{e.ix}, e.cacheView())
			if err != nil {
				endStage()
				return nil, err
			}
			e.met.PlanPeriods.ObserveValue(float64(len(pl.Periods)))
			if err := e.aggregatePlan(ctx, pl, filter, gb, ap, bucket, groups, res, tb); err != nil {
				endStage()
				return nil, err
			}
		}
		endStage()
	}

	endStage = tb.stage("build_rows")
	e.buildRows(res, groups, &q)
	endStage()
	return res, nil
}

// dateBucket is one time bucket of a date-grouped query: the labeling period
// and the day range it aggregates (clipped to the query window).
type dateBucket struct {
	p      temporal.Period
	lo, hi temporal.Day
}

// dateBuckets partitions [lo, hi] into buckets at the given level. Weekly
// buckets fold each month's trailing days (29-31) into that month's fourth
// week, so the bucketing is exhaustive.
func dateBuckets(lvl temporal.Level, lo, hi temporal.Day) []dateBucket {
	var out []dateBucket
	if lvl != temporal.Weekly {
		for _, p := range temporal.PeriodsBetween(lvl, lo, hi) {
			b := dateBucket{p: p, lo: p.Start(), hi: p.End()}
			if b.lo < lo {
				b.lo = lo
			}
			if b.hi > hi {
				b.hi = hi
			}
			out = append(out, b)
		}
		return out
	}
	for _, m := range temporal.PeriodsBetween(temporal.Monthly, lo, hi) {
		for i, w := range m.Children() {
			if i >= 4 {
				break // trailing days belong to week 4
			}
			b := dateBucket{p: w, lo: w.Start(), hi: w.End()}
			if i == 3 {
				b.hi = m.End() // fold trailing days into week 4
			}
			if b.hi < lo || b.lo > hi {
				continue
			}
			if b.lo < lo {
				b.lo = lo
			}
			if b.hi > hi {
				b.hi = hi
			}
			out = append(out, b)
		}
	}
	return out
}

// cacheView adapts the active cache for the planner; nil when caching is off.
func (e *Engine) cacheView() plan.CacheView {
	if e.cache != nil {
		return e.cache
	}
	if e.demand != nil {
		return e.demand
	}
	return nil
}

// planWindow runs the level optimizer (or the flat plan) over [lo, hi].
func (e *Engine) planWindow(lo, hi temporal.Day) (*plan.Plan, error) {
	var pl *plan.Plan
	var err error
	if !e.opts.LevelOptimization {
		pl, err = plan.Flat(lo, hi, planAvail{e.ix}, e.cacheView())
	} else {
		pl, err = plan.Optimize(lo, hi, e.maxLevel(), planAvail{e.ix}, e.cacheView())
	}
	if err == nil {
		e.met.PlanPeriods.ObserveValue(float64(len(pl.Periods)))
	}
	return pl, err
}

// maxLevelBelow caps the optimizer at strictly finer levels than lvl, so a
// date-grouped bucket never reads a cube coarser than its own granularity.
func (e *Engine) maxLevelBelow(lvl temporal.Level) temporal.Level {
	max := e.maxLevel()
	if lvl > temporal.Daily && lvl-1 < max {
		max = lvl - 1
	}
	if !e.opts.LevelOptimization {
		max = temporal.Daily
	}
	return max
}

// aggregatePlan fetches every period of a plan and folds it into groups under
// the bucket's date key.
func (e *Engine) aggregatePlan(ctx context.Context, pl *plan.Plan, f cube.Filter, gb cube.GroupBy,
	ap *cube.AggPlan, bucket rowKey, groups map[rowKey]uint64, res *Result, tb *traceBuilder) error {
	return e.aggregatePeriods(ctx, f, gb, ap, bucket, groups, res, tb, pl.Periods...)
}

// fetchedCube is one resolved plan period: a readable cube plus how it was
// obtained, recorded for stats and the query trace.
type fetchedCube struct {
	rd       cube.Reader
	cached   bool // served from the recency cache
	shared   bool // disk fetch deduplicated onto another query's read
	fellBack bool // reconstructed from constituent cubes (degraded mode)
}

// aggregatePeriods resolves the periods to readable cubes — fanning uncached
// fetches across the shared worker pool, optionally coalescing page-adjacent
// misses into single multi-page reads — then folds them into groups serially,
// in plan order, so stats, metrics, and traces stay deterministic.
func (e *Engine) aggregatePeriods(ctx context.Context, f cube.Filter, gb cube.GroupBy,
	ap *cube.AggPlan, bucket rowKey, groups map[rowKey]uint64, res *Result, tb *traceBuilder,
	periods ...temporal.Period) error {
	fetched := make([]fetchedCube, len(periods))
	// failed captures per-slot fetch failures the degraded-mode fallback may
	// replan around, instead of cancelling the whole fan-out. Each slot is
	// written by exactly one task (same happens-before discipline as
	// fetched); slots stay nil when fallback is disabled.
	var failed []error
	if e.opts.DegradedFallback {
		failed = make([]error, len(periods))
	}
	var err error
	if e.opts.CoalesceReads {
		err = e.fetchCoalesced(ctx, periods, fetched, failed)
	} else {
		err = e.pool.FanOut(ctx, len(periods), func(i int) error {
			fc, ferr := e.fetchCube(ctx, periods[i])
			if ferr != nil {
				if failed != nil && fallbackEligible(ferr) {
					failed[i] = ferr
					return nil
				}
				return ferr
			}
			fetched[i] = fc
			return nil
		})
	}
	if err != nil {
		return err
	}
	// Degraded-mode pass: replan each failed slot from its constituent
	// cubes. Serial — replans are rare and recursion reuses the pooled
	// fetch machinery internally.
	for i, ferr := range failed {
		if ferr == nil {
			continue
		}
		rd, rerr := e.fetchFallback(ctx, periods[i], res)
		if rerr != nil {
			return rerr
		}
		fetched[i] = fetchedCube{rd: rd, fellBack: true}
	}
	scratch := make(map[cube.Key]uint64)
	for i, p := range periods {
		fc := fetched[i]
		res.Stats.CubesFetched++
		e.met.CubesRead[p.Level].Inc()
		tb.addPeriod(bucket, p, fc.cached, fc.fellBack)
		if fc.cached {
			res.Stats.CacheHits++
		} else {
			res.Stats.DiskReads++
			if fc.shared {
				res.Stats.SharedFetches++
			}
			if tb != nil && !fc.fellBack {
				if _, slots, _, ok := e.ix.ExtentOf(p); ok {
					tb.addPages(slots)
				}
			}
		}
		for k := range scratch {
			delete(scratch, k)
		}
		var total uint64
		if ap != nil {
			total = fc.rd.AggregatePlanInto(ap, scratch)
		} else {
			total = fc.rd.AggregateInto(f, gb, scratch)
		}
		res.Total += total
		for k, v := range scratch {
			rk := bucket
			rk.k = k
			groups[rk] += v
		}
	}
	return nil
}

// fetchCube resolves one period to a readable cube: the in-memory cube on a
// cache hit, otherwise a disk fetch (see fetchMiss).
func (e *Engine) fetchCube(ctx context.Context, p temporal.Period) (fetchedCube, error) {
	if rd, ok := e.cacheGet(p); ok {
		return fetchedCube{rd: rd, cached: true}, nil
	}
	return e.fetchMiss(ctx, p)
}

// fetchMiss resolves a cache miss from disk. Concurrent queries needing the
// same uncached cube share one disk read through the singleflight group; the
// leader fetch runs detached from this query's cancellation (one page read is
// bounded work, and waiters with live contexts still want the result), while
// cancellation is enforced upstream by the pool not scheduling further
// fetches.
func (e *Engine) fetchMiss(ctx context.Context, p temporal.Period) (fetchedCube, error) {
	if e.flight == nil {
		rd, err := e.fetchDisk(ctx, p)
		return fetchedCube{rd: rd}, err
	}
	key := strconv.Itoa(int(p.Level)) + "/" + strconv.Itoa(p.Index)
	if req := e.requiredEpoch(p); req > 0 {
		// A flight started before a publish would hand all waiters the
		// pre-publish content; keying by the required epoch keeps a reader
		// that already demands fresher data off the stale flight.
		key += "@" + strconv.FormatUint(req, 10)
	}
	lctx := context.WithoutCancel(ctx)
	v, shared, err := e.flight.Do(key, func() (any, error) {
		return e.fetchDisk(lctx, p)
	})
	if err != nil {
		return fetchedCube{}, err
	}
	return fetchedCube{rd: v.(cube.Reader), shared: shared}, nil
}

// fetchDisk performs the actual page read for one period and fills the demand
// cache. Under PooledDecode the page decodes into a pooled cube which is then
// donated to the cache: the cache owns it from here on, and it is never
// returned to the pool (the donation model — see DESIGN.md, "Hot-path memory
// model").
func (e *Engine) fetchDisk(ctx context.Context, p temporal.Period) (cube.Reader, error) {
	// The epoch stamp is loaded before the page read: the content read is at
	// least as fresh as the directory was at this point, so the stamp is a
	// valid lower bound (a conservative stamp only costs a refetch).
	ep := e.ix.Epoch()
	if e.opts.PooledDecode {
		cb, err := e.ix.FetchPooledCtx(ctx, p)
		if err != nil {
			return nil, err
		}
		e.cachePut(p, cb, ep)
		return cb, nil
	}
	rd, err := e.ix.FetchViewCtx(ctx, p)
	if err != nil {
		return nil, err
	}
	e.cachePut(p, rd, ep)
	return rd, nil
}

// fetchCoalesced resolves periods like the per-period fan-out, but groups
// cache misses whose pages are adjacent on disk into runs, each served by one
// multi-page read. The cache probe runs serially first (hit accounting is
// identical to the uncoalesced path); only the runs fan out. When failed is
// non-nil (degraded fallback on), a run that fails on a bad page is retried
// per page so one corrupt cube doesn't take out its whole run, and the
// individually failing slots are recorded for the fallback pass instead of
// aborting the query.
func (e *Engine) fetchCoalesced(ctx context.Context, periods []temporal.Period, fetched []fetchedCube, failed []error) error {
	// Misses carry their tier: hot pages and cold extents live in separate
	// files, so a run never crosses tiers. Within a tier, adjacency means
	// the next page starts where the previous one ends — a stride of one
	// fixed page in the hot store, `slots` 4 KiB slots in the cold store.
	type miss struct {
		i, page, slots int
		cold           bool
	}
	misses := make([]miss, 0, len(periods))
	for i, p := range periods {
		if rd, ok := e.cacheGet(p); ok {
			fetched[i] = fetchedCube{rd: rd, cached: true}
			continue
		}
		page, slots, cold, ok := e.ix.ExtentOf(p)
		if !ok {
			return fmt.Errorf("core: no cube for period %v", p)
		}
		misses = append(misses, miss{i: i, page: page, slots: slots, cold: cold})
	}
	if len(misses) == 0 {
		return nil
	}
	sort.Slice(misses, func(a, b int) bool {
		if misses[a].cold != misses[b].cold {
			return !misses[a].cold // hot runs first; the order is arbitrary
		}
		return misses[a].page < misses[b].page
	})
	var runs [][]miss
	start := 0
	for k := 1; k <= len(misses); k++ {
		if k == len(misses) || misses[k].cold != misses[k-1].cold ||
			misses[k].page != misses[k-1].page+misses[k-1].slots {
			runs = append(runs, misses[start:k])
			start = k
		}
	}
	return e.pool.FanOut(ctx, len(runs), func(r int) error {
		run := runs[r]
		if len(run) == 1 {
			fc, err := e.fetchMiss(ctx, periods[run[0].i])
			if err != nil {
				if failed != nil && fallbackEligible(err) {
					failed[run[0].i] = err
					return nil
				}
				return err
			}
			fetched[run[0].i] = fc
			return nil
		}
		ps := make([]temporal.Period, len(run))
		for j, m := range run {
			ps[j] = periods[m.i]
		}
		rds, shared, err := e.fetchRun(ctx, ps)
		if err == nil {
			for j, m := range run {
				fetched[m.i] = fetchedCube{rd: rds[j], shared: shared}
			}
			return nil
		}
		if errors.Is(err, tindex.ErrNotAdjacent) {
			// A live publish moved a republished period to a fresh page
			// between the PageOf probe and the coalesced read. Per-period
			// fetches see a consistent directory; retry the run that way.
			for _, m := range run {
				fc, ferr := e.fetchMiss(ctx, periods[m.i])
				if ferr != nil {
					if failed != nil && fallbackEligible(ferr) {
						failed[m.i] = ferr
						continue
					}
					return ferr
				}
				fetched[m.i] = fc
			}
			return nil
		}
		if failed == nil || !fallbackEligible(err) {
			return err
		}
		// The coalesced read hit a bad page somewhere in the run. Refetch
		// each member individually: healthy pages still resolve, and only
		// the actually-broken ones go to the fallback pass.
		for _, m := range run {
			fc, ferr := e.fetchMiss(ctx, periods[m.i])
			if ferr != nil {
				if fallbackEligible(ferr) {
					failed[m.i] = ferr
					continue
				}
				return ferr
			}
			fetched[m.i] = fc
		}
		return nil
	})
}

// fetchRun reads one run of page-adjacent periods with a single coalesced
// I/O, admitting every cube at the demand cache's COLD end (PutCold): a run
// is a scan, and inserting 30+ cold cubes per scan at the hot end would evict
// the recency working set the dashboard's warm queries live on. Midpoint
// admission lets scan pages age out against each other while pages the
// workload revisits are promoted by their next hit — the same reason InnoDB
// gives bulk scans the old sublist instead of the head of the buffer pool.
// Overlapping queries hitting the same run share the read through the
// singleflight group, keyed by the run's first and last periods (page
// adjacency makes that unambiguous); pooled cubes are donated to the cache
// exactly as in the singleton miss path.
func (e *Engine) fetchRun(ctx context.Context, ps []temporal.Period) ([]cube.Reader, bool, error) {
	fetch := func(ctx context.Context) ([]cube.Reader, error) {
		ep := e.ix.Epoch() // pre-read lower bound, as in fetchDisk
		if e.opts.PooledDecode {
			cubes, err := e.ix.FetchRunPooledCtx(ctx, ps)
			if err != nil {
				return nil, err
			}
			rds := make([]cube.Reader, len(cubes))
			for i, cb := range cubes {
				e.cachePutCold(ps[i], cb, ep)
				rds[i] = cb
			}
			return rds, nil
		}
		views, err := e.ix.FetchRunCtx(ctx, ps)
		if err != nil {
			return nil, err
		}
		for i, v := range views {
			e.cachePutCold(ps[i], v, ep)
		}
		return views, nil
	}
	if e.flight == nil {
		rds, err := fetch(ctx)
		return rds, false, err
	}
	pk := func(p temporal.Period) string {
		return strconv.Itoa(int(p.Level)) + "/" + strconv.Itoa(p.Index)
	}
	key := "run:" + pk(ps[0]) + "-" + pk(ps[len(ps)-1])
	if e.liveOn.Load() {
		var req uint64
		for _, p := range ps {
			if r := e.requiredEpoch(p); r > req {
				req = r
			}
		}
		if req > 0 {
			key += "@" + strconv.FormatUint(req, 10)
		}
	}
	lctx := context.WithoutCancel(ctx)
	v, shared, err := e.flight.Do(key, func() (any, error) {
		return fetch(lctx)
	})
	if err != nil {
		return nil, false, err
	}
	return v.([]cube.Reader), shared, nil
}

// buildRows converts the group map into named, sorted rows, applying the
// percentage transform when requested.
func (e *Engine) buildRows(res *Result, groups map[rowKey]uint64, q *Query) {
	rows := make([]Row, 0, len(groups))
	for rk, count := range groups {
		r := Row{Count: count}
		if rk.k.Element >= 0 {
			r.ElementType = osm.ElementType(rk.k.Element).String()
		}
		if rk.k.Country >= 0 {
			r.Country = e.reg.Name(int(rk.k.Country))
		}
		if rk.k.RoadType >= 0 {
			r.RoadType = roads.Name(int(rk.k.RoadType))
		}
		if rk.k.Update >= 0 {
			r.UpdateType = update.Type(rk.k.Update).String()
		}
		if rk.hasPeriod {
			r.Period = rk.p.String()
		}
		if q.Percentage {
			r.Percentage = e.percentage(count, rk, q)
		}
		rows = append(rows, r)
	}
	sortRows(rows)
	res.Rows = rows
}

// sortRows orders rows by period, count descending, then dimension names.
func sortRows(rows []Row) {
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].Period != rows[b].Period {
			return rows[a].Period < rows[b].Period
		}
		if rows[a].Count != rows[b].Count {
			return rows[a].Count > rows[b].Count
		}
		if rows[a].Country != rows[b].Country {
			return rows[a].Country < rows[b].Country
		}
		if rows[a].ElementType != rows[b].ElementType {
			return rows[a].ElementType < rows[b].ElementType
		}
		if rows[a].RoadType != rows[b].RoadType {
			return rows[a].RoadType < rows[b].RoadType
		}
		return rows[a].UpdateType < rows[b].UpdateType
	})
}

// percentage computes count as a percentage of the road network size of the
// row's country (or of the filtered countries, or the whole world), using
// the size snapshot in effect at the query window's end (or at the row's
// bucket end for date-grouped queries).
func (e *Engine) percentage(count uint64, rk rowKey, q *Query) float64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	asOf := q.To
	if rk.hasPeriod {
		asOf = rk.p.End()
	}
	sizes := e.sizesAsOf(asOf)
	if sizes == nil {
		return 0
	}
	var denom uint64
	switch {
	case rk.k.Country >= 0:
		denom = sizes[int(rk.k.Country)]
	case q.Countries != nil:
		for _, n := range q.Countries {
			if v, ok := e.reg.ByName(n); ok {
				denom += sizes[v]
			}
		}
	default:
		denom = sizes[e.reg.WorldValue()]
	}
	if denom == 0 {
		return 0
	}
	return float64(count) / float64(denom) * 100
}
