package core

import (
	"sync"
	"testing"

	"rased/internal/cache"
)

// hotpathOptions builds the full hot-path configuration: sharded demand
// cache, pooled decoding, coalesced reads, vectorized kernels.
func hotpathOptions(slots int) Options {
	o := DefaultOptions()
	o.CacheSlots = slots
	o.CachePolicy = "sharded"
	o.PooledDecode = true
	o.CoalesceReads = true
	return o
}

func TestHotpathModesAgree(t *testing.T) {
	// Every cache policy and fetch-path combination must return identical
	// results; they differ only in I/O and allocation profiles.
	f := getFixture(t)
	queries := []Query{
		{From: f.lo, To: f.hi},
		{From: f.lo, To: f.hi, GroupBy: GroupBy{Country: true}},
		{From: f.lo + 10, To: f.hi - 5, GroupBy: GroupBy{Country: true, UpdateType: true}},
		{From: f.lo, To: f.hi, UpdateTypes: []string{"create", "geometry"}, GroupBy: GroupBy{RoadType: true}},
		{From: f.lo + 3, To: f.hi, GroupBy: GroupBy{Date: ByWeek, Country: true}},
	}
	baseline := newEngine(t, f, func() Options {
		o := DefaultOptions()
		o.ScalarKernels = true
		return o
	}())
	modes := map[string]*Engine{
		"default-kernels":   newEngine(t, f, DefaultOptions()),
		"lru":               newEngine(t, f, func() Options { o := DefaultOptions(); o.CachePolicy = "lru"; return o }()),
		"sharded":           newEngine(t, f, func() Options { o := DefaultOptions(); o.CachePolicy = "sharded"; return o }()),
		"sharded-hotpath":   newEngine(t, f, hotpathOptions(256)),
		"lru-pooled":        newEngine(t, f, func() Options { o := hotpathOptions(256); o.CachePolicy = "lru"; return o }()),
		"hotpath-serial":    newEngine(t, f, func() Options { o := hotpathOptions(256); o.FetchWorkers = 1; o.Singleflight = false; return o }()),
		"coalesce-no-cache": newEngine(t, f, func() Options { o := DefaultOptions(); o.CacheSlots = 0; o.CoalesceReads = true; return o }()),
		"coalesce-flat":     newEngine(t, f, func() Options { o := hotpathOptions(64); o.LevelOptimization = false; return o }()),
	}
	for qi, q := range queries {
		want, err := baseline.Analyze(q)
		if err != nil {
			t.Fatal(err)
		}
		for name, e := range modes {
			// Twice: once cold, once against a warmed demand cache.
			for pass := 0; pass < 2; pass++ {
				got, err := e.Analyze(q)
				if err != nil {
					t.Fatalf("%s query %d pass %d: %v", name, qi, pass, err)
				}
				if got.Total != want.Total {
					t.Fatalf("%s query %d pass %d: total %d, want %d", name, qi, pass, got.Total, want.Total)
				}
				if len(got.Rows) != len(want.Rows) {
					t.Fatalf("%s query %d pass %d: %d rows, want %d", name, qi, pass, len(got.Rows), len(want.Rows))
				}
				for i := range want.Rows {
					if got.Rows[i] != want.Rows[i] {
						t.Fatalf("%s query %d pass %d: row %d = %+v, want %+v", name, qi, pass, i, got.Rows[i], want.Rows[i])
					}
				}
			}
		}
	}
}

func TestHotpathPooledRequiresDemandCache(t *testing.T) {
	f := getFixture(t)
	o := DefaultOptions()
	o.PooledDecode = true // preload policy: cache cannot own donated cubes
	if _, err := NewEngine(f.ix, o); err == nil {
		t.Error("PooledDecode with the preload policy should be rejected")
	}
	o.CachePolicy = "bogus"
	o.PooledDecode = false
	if _, err := NewEngine(f.ix, o); err == nil {
		t.Error("unknown cache policy should be rejected")
	}
}

func TestHotpathDemandCacheWarms(t *testing.T) {
	f := getFixture(t)
	// Coalescing on: run cubes enter at the cold end (PutCold) but must still
	// serve the identical repeat query from memory once admitted.
	e := newEngine(t, f, hotpathOptions(256))
	q := Query{From: f.lo, To: f.hi, GroupBy: GroupBy{Country: true}}

	cold, err := e.Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.DiskReads == 0 {
		t.Fatal("cold query on a demand cache should read from disk")
	}
	warm, err := e.Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.CacheHits != warm.Stats.CubesFetched {
		t.Errorf("warm query: hits %d of %d fetches, want all",
			warm.Stats.CacheHits, warm.Stats.CubesFetched)
	}
	if warm.Stats.DiskReads != 0 {
		t.Errorf("warm query read %d pages from disk", warm.Stats.DiskReads)
	}
	st, ok := e.CacheStats()
	if !ok {
		t.Fatal("CacheStats should report a demand cache")
	}
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("cache stats = %+v, want both hits and misses", st)
	}
	if e.CacheMetrics() == nil {
		t.Error("CacheMetrics should be non-nil with a demand cache")
	}
	if e.Cache() != nil {
		t.Error("preload accessor should be nil under a demand policy")
	}
}

func TestHotpathCoalescedIO(t *testing.T) {
	// A cold flat plan over consecutive daily pages must issue multi-page
	// reads: the store's coalesced counter moves.
	f := getFixture(t)
	o := hotpathOptions(128)
	o.LevelOptimization = false
	e := newEngine(t, f, o)
	before := f.ix.Store().Metrics().CoalescedReads.Value()
	if _, err := e.Analyze(Query{From: f.lo, To: f.hi}); err != nil {
		t.Fatal(err)
	}
	if got := f.ix.Store().Metrics().CoalescedReads.Value() - before; got == 0 {
		t.Error("flat cold scan should coalesce adjacent daily pages")
	}
	// Scan resistance: run cubes are admitted at the cold end, so a flat scan
	// wider than the daily budget (70 days vs ~51 slots) cannot be fully
	// cached — the repeat scan still reads from disk — yet the cold entries
	// must evict each other rather than flushing the rest of the cache.
	second, err := e.Analyze(Query{From: f.lo, To: f.hi})
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.DiskReads == 0 {
		t.Error("repeated over-budget scan should still read from disk")
	}
	if second.Stats.CacheHits == 0 {
		t.Error("repeated scan should hit the cold-admitted entries that survived")
	}
}

func TestHotpathConcurrentSharded(t *testing.T) {
	// Hammer one hot-path engine from many goroutines (meaningful under
	// -race): mixed hot and cold windows, all results checked against a
	// serially computed baseline.
	f := getFixture(t)
	e := newEngine(t, f, hotpathOptions(64)) // small cache: constant eviction
	baseline := newEngine(t, f, func() Options {
		o := DefaultOptions()
		o.ScalarKernels = true
		return o
	}())

	queries := []Query{
		{From: f.lo, To: f.hi, GroupBy: GroupBy{Country: true}},
		{From: f.hi - 6, To: f.hi},
		{From: f.lo, To: f.lo + 13, GroupBy: GroupBy{UpdateType: true}},
		{From: f.lo + 20, To: f.hi - 20, GroupBy: GroupBy{ElementType: true}},
	}
	wants := make([]*Result, len(queries))
	for i, q := range queries {
		w, err := baseline.Analyze(q)
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = w
	}

	const workers = 8
	const iters = 30
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				qi := (w + it) % len(queries)
				got, err := e.Analyze(queries[qi])
				if err != nil {
					errs <- err
					return
				}
				if got.Total != wants[qi].Total || len(got.Rows) != len(wants[qi].Rows) {
					errs <- errResultMismatch(qi)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st, ok := e.CacheStats()
	if !ok || st.Hits == 0 {
		t.Errorf("concurrent run should produce cache hits: %+v", st)
	}
}

type errResultMismatch int

func (e errResultMismatch) Error() string {
	return "concurrent result mismatch on query " + string(rune('0'+int(e)))
}

// TestHotpathAllocationRespected pins that the demand policies still honor
// the (α,β,γ,θ) slot split: a sharded cache sized like the preload cache
// exposes the same per-level budgets.
func TestHotpathAllocationRespected(t *testing.T) {
	s, err := cache.NewSharded(512, cache.DefaultAllocation, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := cache.DefaultAllocation.SlotsFor(512)
	got := 0
	for _, n := range want {
		got += n
	}
	if s.Slots() != 512 || got != 512 {
		t.Errorf("slot split: cache %d, alloc sum %d, want 512", s.Slots(), got)
	}
}
