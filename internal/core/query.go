// Package core implements RASED's Query Execution module (Sections IV and
// VII): the analysis query model — aggregate counts over the UpdateList
// dimensions with arbitrary filters and group-bys — executed against the
// hierarchical temporal index through the level optimizer and the cube cache,
// entirely without touching raw updates.
package core

import (
	"fmt"

	"rased/internal/cube"
	"rased/internal/geo"
	"rased/internal/osm"
	"rased/internal/roads"
	"rased/internal/temporal"
	"rased/internal/update"
)

// Granularity selects the time bucket of a date-grouped query.
type Granularity int

// Date grouping granularities. None means dates are aggregated away.
const (
	None Granularity = iota
	ByDay
	ByWeek
	ByMonth
	ByYear
)

// String returns the granularity name.
func (g Granularity) String() string {
	switch g {
	case None:
		return "none"
	case ByDay:
		return "day"
	case ByWeek:
		return "week"
	case ByMonth:
		return "month"
	case ByYear:
		return "year"
	default:
		return fmt.Sprintf("Granularity(%d)", int(g))
	}
}

// Level returns the index level that serves this granularity.
func (g Granularity) Level() temporal.Level {
	switch g {
	case ByDay:
		return temporal.Daily
	case ByWeek:
		return temporal.Weekly
	case ByMonth:
		return temporal.Monthly
	case ByYear:
		return temporal.Yearly
	default:
		return temporal.Daily
	}
}

// GroupBy selects the result key dimensions, mirroring the paper's SQL
// signature GROUP BY clause.
type GroupBy struct {
	ElementType bool
	Country     bool
	RoadType    bool
	UpdateType  bool
	Date        Granularity
}

// Query is one RASED analysis query (Section IV-A): the SQL signature
//
//	SELECT <grouped dims>, COUNT(*) | Percentage(*)
//	FROM UpdateList
//	WHERE ElementType IN ... AND Date BETWEEN ... AND Country IN ...
//	  AND RoadType IN ... AND UpdateType IN ...
//	GROUP BY <grouped dims>
//
// Filter slices are display names (resolved against the catalogs); nil means
// no restriction.
type Query struct {
	From, To temporal.Day

	ElementTypes []string
	Countries    []string
	RoadTypes    []string
	UpdateTypes  []string

	GroupBy    GroupBy
	Percentage bool

	// Trace requests a QueryTrace on the result (the executed plan, cache
	// residency, page I/O, and stage timings).
	Trace bool
}

// Row is one line of an analysis result. Dimension fields are empty when the
// dimension was not grouped; Period is empty unless the query groups by date.
type Row struct {
	ElementType string  `json:"element_type,omitempty"`
	Country     string  `json:"country,omitempty"`
	RoadType    string  `json:"road_type,omitempty"`
	UpdateType  string  `json:"update_type,omitempty"`
	Period      string  `json:"period,omitempty"`
	Count       uint64  `json:"count"`
	Percentage  float64 `json:"percentage,omitempty"`
}

// ExecStats reports how a query was executed.
type ExecStats struct {
	CubesFetched int `json:"cubes_fetched"`
	DiskReads    int `json:"disk_reads"` // planned cold fetches
	CacheHits    int `json:"cache_hits"`
	// SharedFetches is how many of the DiskReads were deduplicated onto a
	// concurrent identical fetch by the singleflight layer, costing this
	// query no disk pass of its own.
	SharedFetches int `json:"shared_fetches,omitempty"`
	// ReplannedPeriods counts planned cubes that were unreadable and answered
	// from their constituents instead (degraded-mode fallback); FallbackCubes
	// is how many constituent cubes those replans read.
	ReplannedPeriods int   `json:"replanned_periods,omitempty"`
	FallbackCubes    int   `json:"fallback_cubes,omitempty"`
	ElapsedNanos     int64 `json:"elapsed_nanos"`
	// ResultCacheHit marks a result served whole from the QoS result cache
	// (no execution ran; the other counters describe the original execution).
	ResultCacheHit bool `json:"result_cache_hit,omitempty"`
}

// Result is an executed analysis query.
type Result struct {
	Rows  []Row       `json:"rows"`
	Total uint64      `json:"total"`
	Stats ExecStats   `json:"stats"`
	Trace *QueryTrace `json:"trace,omitempty"` // present when Query.Trace was set
}

// CompileFilter resolves the query's name-based filters into cube
// coordinates. Shared with the baseline DBMS so both engines answer exactly
// the same query language.
func CompileFilter(q *Query, reg *geo.Registry) (cube.Filter, error) {
	var f cube.Filter
	if q.ElementTypes != nil {
		f.Elements = []int{}
		for _, n := range q.ElementTypes {
			t, err := osm.ParseElementType(n)
			if err != nil {
				return f, fmt.Errorf("core: %w", err)
			}
			f.Elements = append(f.Elements, int(t))
		}
	}
	if q.Countries != nil {
		f.Countries = []int{}
		for _, n := range q.Countries {
			v, ok := reg.ByName(n)
			if !ok {
				return f, fmt.Errorf("core: unknown country or zone %q", n)
			}
			f.Countries = append(f.Countries, v)
		}
	}
	if q.RoadTypes != nil {
		f.RoadTypes = []int{}
		for _, n := range q.RoadTypes {
			v, ok := roads.ByName(n)
			if !ok {
				return f, fmt.Errorf("core: unknown road type %q", n)
			}
			f.RoadTypes = append(f.RoadTypes, v)
		}
	}
	if q.UpdateTypes != nil {
		f.UpdateTypes = []int{}
		for _, n := range q.UpdateTypes {
			t, err := update.ParseType(n)
			if err != nil {
				return f, fmt.Errorf("core: %w", err)
			}
			f.UpdateTypes = append(f.UpdateTypes, int(t))
		}
	}
	return f, nil
}

// cubeGroupBy projects the query's group-by onto cube dimensions.
func cubeGroupBy(g GroupBy) cube.GroupBy {
	return cube.GroupBy{
		Element:  g.ElementType,
		Country:  g.Country,
		RoadType: g.RoadType,
		Update:   g.UpdateType,
	}
}

// BucketPeriod returns the period labeling day d at granularity g (trailing
// days of a month bucket into that month's fourth week), and ok=false when
// g is None.
func BucketPeriod(g Granularity, d temporal.Day) (temporal.Period, bool) {
	switch g {
	case ByDay:
		return temporal.DayPeriod(d), true
	case ByWeek:
		if w, ok := temporal.WeekPeriod(d); ok {
			return w, true
		}
		m := temporal.MonthPeriod(d)
		return temporal.Period{Level: temporal.Weekly, Index: m.Index*4 + 3}, true
	case ByMonth:
		return temporal.MonthPeriod(d), true
	case ByYear:
		return temporal.YearPeriod(d), true
	default:
		return temporal.Period{}, false
	}
}

// SortRows orders result rows canonically: by period, then count descending,
// then dimension names. Both the RASED engine and the baseline DBMS use this
// ordering so results are directly comparable.
func SortRows(rows []Row) {
	sortRows(rows)
}
