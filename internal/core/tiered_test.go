package core

// Tiered-storage engine tests: queries over a compacted (cold, compressed)
// index must be bit-identical to the same queries over the hot original, the
// coalesced fetch path must group cold extents into runs without crossing
// tiers, and the CacheBytes budget must bound demand-cache residency.

import (
	"context"
	"math/rand"
	"os"
	"testing"
	"time"

	"rased/internal/cube"
	"rased/internal/geo"
	"rased/internal/temporal"
	"rased/internal/tindex"
)

// buildTieredIndex creates a private index (the shared fixture must stay hot
// for the other tests) with deterministic synthetic cubes.
func buildTieredIndex(t *testing.T, days int) (*tindex.Index, temporal.Day, temporal.Day) {
	t.Helper()
	dir, err := os.MkdirTemp("", "rased-tiered-test")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	schema := cube.ScaledSchema(geo.Default().NumValues(), 25)
	ix, err := tindex.Create(dir, schema, 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	lo := temporal.NewDay(2022, time.January, 1)
	de, dc, dr, du := schema.Dims()
	for i := 0; i < days; i++ {
		d := lo + temporal.Day(i)
		cb := cube.New(schema)
		rng := rand.New(rand.NewSource(int64(d)))
		for j := 0; j < 50; j++ {
			cb.Add(rng.Intn(de), rng.Intn(dc), rng.Intn(dr), rng.Intn(du), uint64(1+rng.Intn(4)))
		}
		if err := ix.AppendDay(d, cb); err != nil {
			t.Fatal(err)
		}
	}
	return ix, lo, lo + temporal.Day(days-1)
}

func TestQueriesIdenticalAcrossTiers(t *testing.T) {
	ix, lo, hi := buildTieredIndex(t, 45)
	queries := []Query{
		{From: lo, To: hi},
		{From: lo, To: hi, GroupBy: GroupBy{Country: true}},
		{From: lo + 7, To: hi - 3, GroupBy: GroupBy{Country: true, UpdateType: true}},
		{From: lo, To: hi, GroupBy: GroupBy{Date: ByWeek}},
	}
	opts := DefaultOptions()
	opts.CachePolicy = "sharded"
	opts.PooledDecode = true
	opts.CoalesceReads = true
	opts.CacheSlots = 64

	hot, err := NewEngine(ix, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]*Result, len(queries))
	for i, q := range queries {
		if want[i], err = hot.Analyze(q); err != nil {
			t.Fatalf("hot query %d: %v", i, err)
		}
	}

	// Compact everything and query through a fresh engine (cold cache) so
	// every fetch — singleton and coalesced run alike — reads cold extents.
	var ps []temporal.Period
	for lvl := temporal.Daily; lvl <= temporal.Yearly; lvl++ {
		ps = append(ps, ix.Periods(lvl)...)
	}
	st, err := ix.CompactPeriods(context.Background(), ps)
	if err != nil {
		t.Fatal(err)
	}
	if st.Compacted != len(ps) {
		t.Fatalf("compacted %d of %d periods", st.Compacted, len(ps))
	}
	cold, err := NewEngine(ix, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		got, err := cold.Analyze(q)
		if err != nil {
			t.Fatalf("cold query %d: %v", i, err)
		}
		if got.Total != want[i].Total || len(got.Rows) != len(want[i].Rows) {
			t.Fatalf("cold query %d: total %d / %d rows, want %d / %d",
				i, got.Total, len(got.Rows), want[i].Total, len(want[i].Rows))
		}
		for j := range want[i].Rows {
			if got.Rows[j] != want[i].Rows[j] {
				t.Fatalf("cold query %d row %d = %+v, want %+v", i, j, got.Rows[j], want[i].Rows[j])
			}
		}
	}
}

func TestCacheBytesBoundsResidency(t *testing.T) {
	ix, lo, hi := buildTieredIndex(t, 30)
	opts := DefaultOptions()
	opts.CachePolicy = "lru"
	opts.CacheSlots = 1024
	opts.CacheBytes = 256 * 1024 // far below 30 dense daily cubes
	e, err := NewEngine(ix, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Analyze(Query{From: lo, To: hi, GroupBy: GroupBy{Country: true}}); err != nil {
		t.Fatal(err)
	}
	l, ok := e.demand.(interface{ Bytes() int64 })
	if !ok {
		t.Fatal("demand cache does not expose Bytes")
	}
	if got := l.Bytes(); got > opts.CacheBytes {
		t.Fatalf("resident cache bytes %d exceed budget %d", got, opts.CacheBytes)
	}

	// Validation: a byte budget without a demand cache is a config error.
	bad := DefaultOptions()
	bad.CacheBytes = 1 << 20
	if _, err := NewEngine(ix, bad); err == nil {
		t.Error("CacheBytes with the preload policy should be rejected")
	}
}
