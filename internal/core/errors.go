package core

import "errors"

// ErrBadQuery marks a request the engine (or a routing tier in front of it)
// rejected as malformed before execution: an unknown column, group, or
// granularity, an inverted time window, a partition naming a group outside
// the cluster map. Wrapping it keeps the human-readable detail while giving
// HTTP handlers and the cluster wire one sentinel to dispatch 400 /
// bad_request on — part of the exact-or-typed error contract the errsurface
// lint rule enforces statically.
var ErrBadQuery = errors.New("core: bad query")

// ErrUnavailable marks a failure to reach a backend at all: a shard with no
// transport endpoint, a refused connection, an uninterpretable RPC response.
// Distinct from ErrDegraded (the backend answered, inexactly) — nothing
// answered. HTTP surfaces map it to 503; without the sentinel these
// infrastructure failures fell through error precedence as untyped and were
// blamed on the client as 400s.
var ErrUnavailable = errors.New("core: backend unavailable")
