package core

import (
	"sort"
	"strconv"
	"strings"

	"rased/internal/exec"
)

// QoS wiring: the per-tenant rate limit and the epoch-stamped result cache
// sit in front of admission control, in that order. The limiter sheds callers
// who exceed THEIR budget (429) before they can consume shared capacity; the
// result cache then answers identical-query repeats without an admission slot
// — a dashboard tile refreshed by many tenants must not occupy the execution
// queue fifty times. Only fully-successful, untraced, unrestricted executions
// are cached, and every entry carries the index epoch loaded before execution
// as a freshness lower bound (the same convention as fetchDisk), so a live
// fold invalidates the whole cache by advancing the epoch — see
// exec.ResultCache for the monotone-read argument.

// QueryKey returns the canonical identity of q's answer: two queries with
// equal keys return identical results when executed at the same epoch. Filter
// slices are order-insensitive (compared as sorted copies) but nil and empty
// stay distinct — nil means unfiltered, empty means "match nothing". Trace is
// excluded: trace queries bypass the result cache entirely (their value is
// the fresh execution record).
func QueryKey(q Query) string {
	var b strings.Builder
	b.Grow(64)
	b.WriteString(strconv.Itoa(int(q.From)))
	b.WriteByte('-')
	b.WriteString(strconv.Itoa(int(q.To)))
	writeFilterDim(&b, 'e', q.ElementTypes)
	writeFilterDim(&b, 'c', q.Countries)
	writeFilterDim(&b, 'r', q.RoadTypes)
	writeFilterDim(&b, 'u', q.UpdateTypes)
	b.WriteString("|g:")
	for _, on := range []bool{q.GroupBy.ElementType, q.GroupBy.Country, q.GroupBy.RoadType, q.GroupBy.UpdateType} {
		if on {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	b.WriteString(q.GroupBy.Date.String())
	if q.Percentage {
		b.WriteString("|pct")
	}
	return b.String()
}

// writeFilterDim appends one filter dimension to the key: absent for nil,
// the sorted values otherwise (names may repeat in the query; duplicates are
// kept — they do not change the answer but deduplicating here buys nothing).
func writeFilterDim(b *strings.Builder, tag byte, vals []string) {
	if vals == nil {
		return
	}
	b.WriteByte('|')
	b.WriteByte(tag)
	b.WriteByte(':')
	sorted := append([]string(nil), vals...)
	sort.Strings(sorted)
	for i, v := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(v)
	}
}

// resultCacheKey decides cacheability and builds the key: only whole-query
// (unrestricted), untraced executions with the cache enabled participate.
// Partition-restricted executions are shard-internal partial answers — their
// identity depends on the restriction, and the routing tier caches the merged
// whole answer anyway.
func (e *Engine) resultCacheKey(q Query, restrict *restriction) (string, bool) {
	if e.rcache == nil || restrict != nil || q.Trace {
		return "", false
	}
	return QueryKey(q), true
}

// cachedResult returns a caller-owned copy of a cached result. Rows are
// copied because the serving tier sorts and truncates them in place; Row
// itself is a value type, so a slice copy severs all sharing.
func cachedResult(v *Result) *Result {
	cp := *v
	cp.Rows = append([]Row(nil), v.Rows...)
	cp.Stats.ResultCacheHit = true
	return &cp
}

// storeResult puts a defensive copy of res into the result cache, stamped
// with the pre-execution epoch.
func (e *Engine) storeResult(key string, epoch uint64, res *Result) {
	cp := *res
	cp.Rows = append([]Row(nil), res.Rows...)
	cp.Trace = nil
	e.rcache.Put(key, epoch, &cp)
}

// ResultCacheMetrics returns the result cache's instruments (nil when the
// cache is disabled).
func (e *Engine) ResultCacheMetrics() *exec.ResultCacheMetrics {
	return e.rcache.Metrics()
}

// TenantLimiter returns the engine's per-tenant rate limiter (nil when
// disabled); tests use it to drive the clock.
func (e *Engine) TenantLimiter() *exec.TenantLimiter {
	return e.limiter
}
