package core

import (
	"rased/internal/obs"
	"rased/internal/temporal"
)

// EngineMetrics are the engine's obs instruments: query throughput and
// latency, the per-level cube read mix (the quantity the level optimizer
// exists to shrink), and the optimizer's plan sizes.
type EngineMetrics struct {
	Queries      *obs.Counter
	QueryErrors  *obs.Counter
	QueryLatency *obs.Histogram
	CubesRead    [temporal.NumLevels]*obs.Counter
	PlanPeriods  *obs.Histogram

	// Degraded-mode instruments: replans that substituted constituent cubes
	// for an unreadable rollup, the constituent cubes those replans read, and
	// queries that failed typed-degraded because even the leaves were gone.
	FallbackReplans *obs.Counter
	FallbackCubes   *obs.Counter
	DegradedQueries *obs.Counter
}

func newEngineMetrics() *EngineMetrics {
	m := &EngineMetrics{
		Queries:      obs.NewCounter("rased_queries_total", "Analysis queries served."),
		QueryErrors:  obs.NewCounter("rased_query_errors_total", "Analysis queries that failed."),
		QueryLatency: obs.NewHistogram("rased_query_latency_seconds", "End-to-end Analyze latency.", nil),
		PlanPeriods:  obs.NewHistogram("rased_plan_periods", "Periods per optimizer plan.", obs.CountBuckets),
		FallbackReplans: obs.NewCounter("rased_fallback_replans_total",
			"Unreadable rollup cubes reconstructed from constituents mid-query."),
		FallbackCubes: obs.NewCounter("rased_fallback_cubes_total",
			"Constituent cubes read by degraded-mode replans."),
		DegradedQueries: obs.NewCounter("rased_degraded_queries_total",
			"Queries that failed with ErrDegraded (leaf data unreadable)."),
	}
	for i := 0; i < temporal.NumLevels; i++ {
		m.CubesRead[i] = obs.NewCounter("rased_cubes_read_total", "Cubes read during query execution.",
			obs.L("level", temporal.Level(i).String()))
	}
	return m
}

// All returns the instruments for registry wiring.
func (m *EngineMetrics) All() []obs.Metric {
	out := []obs.Metric{m.Queries, m.QueryErrors, m.QueryLatency, m.PlanPeriods,
		m.FallbackReplans, m.FallbackCubes, m.DegradedQueries}
	for i := 0; i < temporal.NumLevels; i++ {
		out = append(out, m.CubesRead[i])
	}
	return out
}

// Metrics returns the engine's obs instruments for registry wiring.
func (e *Engine) Metrics() *EngineMetrics { return e.met }

// ExecMetrics returns the instruments of the engine's concurrency substrate
// (worker pool, singleflight, admission control); empty when all are
// disabled.
func (e *Engine) ExecMetrics() []obs.Metric {
	var out []obs.Metric
	if m := e.pool.Metrics(); m != nil {
		out = append(out, m.All()...)
	}
	if m := e.flight.Metrics(); m != nil {
		out = append(out, m.All()...)
	}
	if m := e.adm.Metrics(); m != nil {
		out = append(out, m.All()...)
	}
	if m := e.adm.QoSMetrics(); m != nil {
		out = append(out, m.All()...)
	}
	if m := e.limiter.Metrics(); m != nil {
		out = append(out, m.All()...)
	}
	if m := e.rcache.Metrics(); m != nil {
		out = append(out, m.All()...)
	}
	return out
}
