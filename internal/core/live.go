package core

// Live-ingest freshness tracking. The live pipeline republishes the current
// day's cube (and, at day close, its enclosing rollups) under a new index
// epoch many times a minute. Cached readers decoded from superseded pages are
// internally consistent but stale; this file is how the pipeline tells the
// engine which periods moved and how fresh a cache hit must be to serve them.
//
// The map holds only live-updated periods — historical periods are immutable
// and never appear — so the common probe is one atomic load plus, for live
// deployments, one RLock'd lookup.

import (
	"rased/internal/temporal"
)

// MarkLiveUpdate records that the given periods were republished at epoch.
// Demand-cache hits for them must now carry a stamp >= epoch; preload-cache
// entries are invalidated outright (the preload cache cannot be refilled at
// query time). Required epochs only ratchet upward, so delivery order does
// not matter. The live pipeline calls this after every PublishEpoch.
func (e *Engine) MarkLiveUpdate(epoch uint64, ps ...temporal.Period) {
	if epoch == 0 || len(ps) == 0 {
		return
	}
	e.liveMu.Lock()
	if e.liveReq == nil {
		e.liveReq = make(map[temporal.Period]uint64)
	}
	for _, p := range ps {
		if e.liveReq[p] < epoch {
			e.liveReq[p] = epoch
		}
	}
	e.liveMu.Unlock()
	e.liveOn.Store(true)
	if e.cache != nil {
		for _, p := range ps {
			e.cache.Invalidate(p)
		}
	}
}

// requiredEpoch returns the minimum epoch a cached cube for p must carry, or
// 0 when p has never been live-updated.
func (e *Engine) requiredEpoch(p temporal.Period) uint64 {
	if !e.liveOn.Load() {
		return 0
	}
	e.liveMu.RLock()
	req := e.liveReq[p]
	e.liveMu.RUnlock()
	return req
}
