package core

import (
	"fmt"
	"io"

	"rased/internal/plan"
)

// PeriodPlan describes one cube the optimizer chose.
type PeriodPlan struct {
	Period string `json:"period"`
	Level  string `json:"level"`
	Cached bool   `json:"cached"`
	// Fallback marks a cube that was unreadable and reconstructed from its
	// constituents by degraded-mode execution (traces only; Explain plans
	// around quarantined pages up front and never predicts a fallback).
	Fallback bool `json:"fallback,omitempty"`
}

// BucketPlan is the plan of one date bucket (the whole window for queries
// that do not group by date).
type BucketPlan struct {
	Bucket  string       `json:"bucket,omitempty"`
	Periods []PeriodPlan `json:"periods"`
}

// Explanation describes how Analyze would execute a query: the clipped
// window and, per bucket, the exact mix of daily/weekly/monthly/yearly cubes
// the level optimizer selected, with their cache residency.
type Explanation struct {
	From      string       `json:"from,omitempty"`
	To        string       `json:"to,omitempty"`
	Empty     bool         `json:"empty,omitempty"`
	Buckets   []BucketPlan `json:"buckets,omitempty"`
	Fetches   int          `json:"fetches"`
	DiskReads int          `json:"disk_reads"`
}

// Explain plans a query without executing it.
func (e *Engine) Explain(q Query) (*Explanation, error) {
	if q.To < q.From {
		return nil, fmt.Errorf("core: query window [%s, %s] is inverted", q.From, q.To)
	}
	// Validate the filters even though planning ignores them, so Explain
	// rejects exactly what Analyze rejects.
	if _, err := CompileFilter(&q, e.reg); err != nil {
		return nil, err
	}
	lo, hi, ok := e.clip(q.From, q.To)
	if !ok {
		return &Explanation{Empty: true}, nil
	}
	ex := &Explanation{From: lo.String(), To: hi.String()}

	addPlan := func(bucket string, pl *plan.Plan) {
		bp := BucketPlan{Bucket: bucket}
		for _, p := range pl.Periods {
			bp.Periods = append(bp.Periods, PeriodPlan{
				Period: p.String(),
				Level:  p.Level.String(),
				Cached: e.cacheContains(p),
			})
		}
		ex.Buckets = append(ex.Buckets, bp)
		ex.Fetches += pl.Fetches
		ex.DiskReads += pl.DiskReads
	}

	if q.GroupBy.Date == None {
		pl, err := e.planWindow(lo, hi)
		if err != nil {
			return nil, err
		}
		addPlan("", pl)
		return ex, nil
	}
	lvl := q.GroupBy.Date.Level()
	for _, b := range dateBuckets(lvl, lo, hi) {
		if b.lo == b.p.Start() && b.hi == b.p.End() && e.ix.Has(b.p) {
			cached := e.cacheContains(b.p)
			disk := 1
			if cached {
				disk = 0
			}
			ex.Buckets = append(ex.Buckets, BucketPlan{
				Bucket:  b.p.String(),
				Periods: []PeriodPlan{{Period: b.p.String(), Level: b.p.Level.String(), Cached: cached}},
			})
			ex.Fetches++
			ex.DiskReads += disk
			continue
		}
		pl, err := plan.Optimize(b.lo, b.hi, e.maxLevelBelow(lvl), planAvail{e.ix}, e.cacheView())
		if err != nil {
			return nil, err
		}
		addPlan(b.p.String(), pl)
	}
	return ex, nil
}

// Print renders the explanation in a compact plan-tree form.
func (ex *Explanation) Print(w io.Writer) {
	if ex.Empty {
		fmt.Fprintln(w, "plan: empty (window outside index coverage)")
		return
	}
	fmt.Fprintf(w, "plan: window %s .. %s, %d cubes (%d from disk, %d cached)\n",
		ex.From, ex.To, ex.Fetches, ex.DiskReads, ex.Fetches-ex.DiskReads)
	for _, b := range ex.Buckets {
		if b.Bucket != "" {
			fmt.Fprintf(w, "  bucket %s:\n", b.Bucket)
		}
		// Summarize runs of the same level to keep wide plans readable.
		i := 0
		for i < len(b.Periods) {
			j := i
			for j < len(b.Periods) && b.Periods[j].Level == b.Periods[i].Level &&
				b.Periods[j].Cached == b.Periods[i].Cached {
				j++
			}
			mark := "disk"
			if b.Periods[i].Cached {
				mark = "cache"
			}
			if j-i == 1 {
				fmt.Fprintf(w, "    %-8s %s (%s)\n", b.Periods[i].Level, b.Periods[i].Period, mark)
			} else {
				fmt.Fprintf(w, "    %-8s %s .. %s ×%d (%s)\n", b.Periods[i].Level,
					b.Periods[i].Period, b.Periods[j-1].Period, j-i, mark)
			}
			i = j
		}
	}
}
