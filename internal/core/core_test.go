package core

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"rased/internal/cache"
	"rased/internal/crawl"
	"rased/internal/cube"
	"rased/internal/geo"
	"rased/internal/osm"
	"rased/internal/osmgen"
	"rased/internal/roads"
	"rased/internal/temporal"
	"rased/internal/tindex"
	"rased/internal/update"
)

// The shared fixture: a generated world crawled and ingested once, with every
// raw record kept for brute-force verification.
type fixture struct {
	dir    string
	schema *cube.Schema
	ix     *tindex.Index
	recs   []update.Record
	sizes  map[int]uint64
	lo, hi temporal.Day
}

var (
	fixOnce sync.Once
	fix     *fixture
	fixErr  error
)

const fixDays = 70

func getFixture(t *testing.T) *fixture {
	t.Helper()
	fixOnce.Do(buildFixture)
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fix
}

func buildFixture() {
	dir, err := os.MkdirTemp("", "rased-core-test")
	if err != nil {
		fixErr = err
		return
	}
	// Full country catalog (zones included), truncated road types to keep
	// cube pages small.
	schema := cube.ScaledSchema(geo.Default().NumValues(), 25)
	ix, err := tindex.Create(dir, schema, 4)
	if err != nil {
		fixErr = err
		return
	}
	g := osmgen.New(osmgen.Config{
		Seed:          21,
		Start:         temporal.NewDay(2021, time.January, 1),
		UpdatesPerDay: 120,
		SeedElements:  400,
	})
	csIdx := crawl.BuildChangesetIndex(g.Changesets())
	ing := NewIngestor(ix)
	reg := geo.Default()

	f := &fixture{dir: dir, schema: schema, ix: ix}
	f.lo = g.Day()
	for i := 0; i < fixDays; i++ {
		art := g.NextDay()
		csIdx.Add(art.Changesets)
		recs, _, err := crawl.Daily(art.Change, csIdx, reg)
		if err != nil {
			fixErr = err
			return
		}
		// Keep only records the schema can hold, mirroring ingestion.
		for _, r := range recs {
			if int(r.RoadType) < 25 {
				f.recs = append(f.recs, r)
			}
		}
		if err := ing.AppendDay(art.Day, recs); err != nil {
			fixErr = err
			return
		}
	}
	f.hi = g.Day() - 1
	f.sizes = g.NetworkSizes()
	fix = f
}

func TestMain(m *testing.M) {
	code := m.Run()
	if fix != nil {
		fix.ix.Close()
		os.RemoveAll(fix.dir)
	}
	os.Exit(code)
}

// bruteForce recounts the raw UpdateList with cube semantics: each record
// contributes one tuple per country value it rolls up into.
func bruteForce(f *fixture, q Query) map[string]uint64 {
	reg := geo.Default()
	out := make(map[string]uint64)
	inList := func(v string, list []string) bool {
		if list == nil {
			return true
		}
		for _, x := range list {
			if x == v {
				return true
			}
		}
		return false
	}
	for _, r := range f.recs {
		if r.Day < q.From || r.Day > q.To {
			continue
		}
		if !inList(r.ElementType.String(), q.ElementTypes) {
			continue
		}
		if !inList(roads.Name(int(r.RoadType)), q.RoadTypes) {
			continue
		}
		if !inList(r.UpdateType.String(), q.UpdateTypes) {
			continue
		}
		countryVals := []int{int(r.Country)}
		if reg.IsLeafCountry(int(r.Country)) {
			countryVals = append(countryVals, reg.ZonesOf(int(r.Country), r.Lat, r.Lon)...)
		}
		for _, cv := range countryVals {
			if !inList(reg.Name(cv), q.Countries) {
				continue
			}
			key := ""
			if q.GroupBy.ElementType {
				key += "e=" + r.ElementType.String() + ";"
			}
			if q.GroupBy.Country {
				key += "c=" + reg.Name(cv) + ";"
			}
			if q.GroupBy.RoadType {
				key += "r=" + roads.Name(int(r.RoadType)) + ";"
			}
			if q.GroupBy.UpdateType {
				key += "u=" + r.UpdateType.String() + ";"
			}
			if q.GroupBy.Date != None {
				key += "p=" + bucketLabel(q.GroupBy.Date, r.Day) + ";"
			}
			out[key] += 1
		}
	}
	return out
}

func bucketLabel(g Granularity, d temporal.Day) string {
	switch g {
	case ByDay:
		return temporal.DayPeriod(d).String()
	case ByWeek:
		if w, ok := temporal.WeekPeriod(d); ok {
			return w.String()
		}
		m := temporal.MonthPeriod(d)
		return temporal.Period{Level: temporal.Weekly, Index: m.Index*4 + 3}.String()
	case ByMonth:
		return temporal.MonthPeriod(d).String()
	case ByYear:
		return temporal.YearPeriod(d).String()
	default:
		return ""
	}
}

func rowKeyOf(r Row) string {
	key := ""
	if r.ElementType != "" {
		key += "e=" + r.ElementType + ";"
	}
	if r.Country != "" {
		key += "c=" + r.Country + ";"
	}
	if r.RoadType != "" {
		key += "r=" + r.RoadType + ";"
	}
	if r.UpdateType != "" {
		key += "u=" + r.UpdateType + ";"
	}
	if r.Period != "" {
		key += "p=" + r.Period + ";"
	}
	return key
}

func newEngine(t *testing.T, f *fixture, opts Options) *Engine {
	t.Helper()
	e, err := NewEngine(f.ix, opts)
	if err != nil {
		t.Fatal(err)
	}
	e.SetNetworkSizes(f.sizes)
	return e
}

func checkAgainstBruteForce(t *testing.T, f *fixture, e *Engine, q Query) *Result {
	t.Helper()
	res, err := e.Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteForce(f, q)
	if len(res.Rows) != len(want) {
		t.Errorf("rows = %d, brute force groups = %d", len(res.Rows), len(want))
	}
	for _, r := range res.Rows {
		k := rowKeyOf(r)
		if want[k] != r.Count {
			t.Errorf("row %q = %d, brute force %d", k, r.Count, want[k])
		}
	}
	return res
}

func TestAnalyzeNoGroupNoFilter(t *testing.T) {
	f := getFixture(t)
	e := newEngine(t, f, DefaultOptions())
	checkAgainstBruteForce(t, f, e, Query{From: f.lo, To: f.hi})
}

func TestAnalyzeCountryAnalysisExample(t *testing.T) {
	// Paper Example 1: newly created or modified elements per country and
	// element type over a period.
	f := getFixture(t)
	e := newEngine(t, f, DefaultOptions())
	res := checkAgainstBruteForce(t, f, e, Query{
		From: f.lo, To: f.hi,
		UpdateTypes: []string{"create", "geometry", "metadata"},
		GroupBy:     GroupBy{Country: true, ElementType: true},
	})
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Rows sorted by count descending.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Count > res.Rows[i-1].Count {
			t.Fatal("rows not sorted by count desc")
		}
	}
}

func TestAnalyzeRoadTypeExample(t *testing.T) {
	// Paper Example 2: per road type and element type for one country.
	f := getFixture(t)
	e := newEngine(t, f, DefaultOptions())
	checkAgainstBruteForce(t, f, e, Query{
		From: f.lo + 10, To: f.hi,
		Countries:   []string{"United States"},
		UpdateTypes: []string{"create", "geometry", "metadata"},
		GroupBy:     GroupBy{RoadType: true, ElementType: true},
	})
}

func TestAnalyzeZoneQuery(t *testing.T) {
	f := getFixture(t)
	e := newEngine(t, f, DefaultOptions())
	res := checkAgainstBruteForce(t, f, e, Query{
		From: f.lo, To: f.hi,
		Countries: []string{"Europe"},
		GroupBy:   GroupBy{ElementType: true},
	})
	if res.Total == 0 {
		t.Error("Europe zone rollup should be non-empty")
	}
	// World zone equals the unfiltered leaf total.
	world, err := e.Analyze(Query{From: f.lo, To: f.hi, Countries: []string{"World"}})
	if err != nil {
		t.Fatal(err)
	}
	if world.Total != uint64(len(filterWindow(f, f.lo, f.hi))) {
		t.Errorf("world total = %d, records = %d", world.Total, len(filterWindow(f, f.lo, f.hi)))
	}
}

func filterWindow(f *fixture, lo, hi temporal.Day) []update.Record {
	var out []update.Record
	for _, r := range f.recs {
		if r.Day >= lo && r.Day <= hi && geo.Default().IsLeafCountry(int(r.Country)) {
			out = append(out, r)
		}
	}
	return out
}

func TestAnalyzeTimeSeries(t *testing.T) {
	// Paper Example 3: daily percentage per country.
	f := getFixture(t)
	e := newEngine(t, f, DefaultOptions())
	q := Query{
		From: f.lo, To: f.hi,
		Countries:  []string{"United States", "Germany", "Singapore"},
		GroupBy:    GroupBy{Country: true, Date: ByDay},
		Percentage: true,
	}
	res := checkAgainstBruteForce(t, f, e, q)
	for _, r := range res.Rows {
		v, ok := geo.Default().ByName(r.Country)
		if !ok {
			t.Fatalf("unknown country in row: %q", r.Country)
		}
		denom := f.sizes[v]
		if denom == 0 {
			continue
		}
		want := float64(r.Count) / float64(denom) * 100
		if r.Percentage != want {
			t.Errorf("row %s %s pct = %f, want %f", r.Country, r.Period, r.Percentage, want)
		}
	}
}

func TestAnalyzeDateGranularities(t *testing.T) {
	f := getFixture(t)
	e := newEngine(t, f, DefaultOptions())
	for _, g := range []Granularity{ByDay, ByWeek, ByMonth, ByYear} {
		checkAgainstBruteForce(t, f, e, Query{
			From: f.lo + 3, To: f.hi - 2, // partial edges
			GroupBy: GroupBy{Date: g},
		})
	}
}

func TestAnalyzeVariantsAgree(t *testing.T) {
	// RASED-F (flat), RASED-O (no cache), and full RASED must return
	// identical rows; only their I/O profiles differ.
	f := getFixture(t)
	full := newEngine(t, f, DefaultOptions())
	noCache := newEngine(t, f, Options{CacheSlots: 0, LevelOptimization: true})
	flat := newEngine(t, f, Options{CacheSlots: 0, LevelOptimization: false})

	q := Query{From: f.lo, To: f.hi, GroupBy: GroupBy{Country: true, UpdateType: true}}
	rFull, err := full.Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	rNoCache, err := noCache.Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	rFlat, err := flat.Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if rFull.Total != rNoCache.Total || rFull.Total != rFlat.Total {
		t.Fatalf("totals differ: %d %d %d", rFull.Total, rNoCache.Total, rFlat.Total)
	}
	if len(rFull.Rows) != len(rFlat.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(rFull.Rows), len(rFlat.Rows))
	}
	for i := range rFull.Rows {
		if rFull.Rows[i] != rFlat.Rows[i] || rFull.Rows[i] != rNoCache.Rows[i] {
			t.Fatalf("row %d differs across variants", i)
		}
	}
	// The flat variant reads every daily cube; the optimizer far fewer.
	if rFlat.Stats.CubesFetched != fixDays {
		t.Errorf("flat fetches = %d, want %d", rFlat.Stats.CubesFetched, fixDays)
	}
	if rNoCache.Stats.CubesFetched >= rFlat.Stats.CubesFetched/2 {
		t.Errorf("optimizer fetches %d not much better than flat %d",
			rNoCache.Stats.CubesFetched, rFlat.Stats.CubesFetched)
	}
	if rFull.Stats.CacheHits == 0 {
		t.Error("full engine should hit the cache on a full-window query")
	}
	if rFull.Stats.DiskReads > rNoCache.Stats.DiskReads {
		t.Error("cache should not increase disk reads")
	}
}

func TestAnalyzeWindowClipping(t *testing.T) {
	f := getFixture(t)
	e := newEngine(t, f, DefaultOptions())
	// Query extending beyond coverage is clipped, not an error.
	res := checkAgainstBruteForce(t, f, e, Query{From: f.lo - 100, To: f.hi + 100})
	if res.Total == 0 {
		t.Error("clipped query should still return data")
	}
	// Disjoint window: empty result.
	res2, err := e.Analyze(Query{From: f.hi + 10, To: f.hi + 20})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Total != 0 || len(res2.Rows) != 0 {
		t.Error("disjoint window should be empty")
	}
	// Inverted window: error.
	if _, err := e.Analyze(Query{From: f.hi, To: f.lo}); err == nil {
		t.Error("inverted window should error")
	}
}

func TestAnalyzeBadFilters(t *testing.T) {
	f := getFixture(t)
	e := newEngine(t, f, DefaultOptions())
	cases := []Query{
		{From: f.lo, To: f.hi, ElementTypes: []string{"polygon"}},
		{From: f.lo, To: f.hi, Countries: []string{"Atlantis"}},
		{From: f.lo, To: f.hi, RoadTypes: []string{"hyperlane"}},
		{From: f.lo, To: f.hi, UpdateTypes: []string{"teleport"}},
	}
	for i, q := range cases {
		if _, err := e.Analyze(q); err == nil {
			t.Errorf("case %d: bad filter accepted", i)
		}
	}
}

func TestAnalyzeEmptyFilterListMatchesNothing(t *testing.T) {
	f := getFixture(t)
	e := newEngine(t, f, DefaultOptions())
	res, err := e.Analyze(Query{From: f.lo, To: f.hi, Countries: []string{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 0 {
		t.Errorf("empty IN list should match nothing, got %d", res.Total)
	}
}

func TestPercentageDenominators(t *testing.T) {
	f := getFixture(t)
	e := newEngine(t, f, DefaultOptions())
	reg := geo.Default()

	// Ungrouped with country filter: denominator is the sum of the filter's
	// sizes.
	q := Query{From: f.lo, To: f.hi, Countries: []string{"United States", "Germany"}, Percentage: true}
	res, err := e.Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	us, _ := reg.ByName("United States")
	de, _ := reg.ByName("Germany")
	denom := f.sizes[us] + f.sizes[de]
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	want := float64(res.Rows[0].Count) / float64(denom) * 100
	if res.Rows[0].Percentage != want {
		t.Errorf("pct = %f, want %f", res.Rows[0].Percentage, want)
	}

	// No filter: denominator is the world network size.
	res2, err := e.Analyze(Query{From: f.lo, To: f.hi, Percentage: true, Countries: []string{"World"}})
	if err != nil {
		t.Fatal(err)
	}
	_ = res2
}

func TestCacheEffect(t *testing.T) {
	f := getFixture(t)
	e := newEngine(t, f, Options{CacheSlots: 256, Allocation: cache.Allocation{Alpha: 1}, LevelOptimization: true})
	// Recent-window query: all daily cubes cached.
	q := Query{From: f.hi - 9, To: f.hi}
	res, err := e.Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DiskReads != 0 {
		t.Errorf("recent query disk reads = %d, want 0 (stats: %+v)", res.Stats.DiskReads, res.Stats)
	}
	if res.Stats.CacheHits != res.Stats.CubesFetched {
		t.Errorf("all fetches should be hits: %+v", res.Stats)
	}
}

func TestIngestorReplaceMonth(t *testing.T) {
	// Build a private index, append a month with provisional types, then
	// replace with refined types and check totals are preserved while the
	// update-type split changes.
	dir := t.TempDir()
	schema := cube.ScaledSchema(geo.Default().NumValues(), 25)
	ix, err := tindex.Create(dir, schema, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	ing := NewIngestor(ix)

	lo := temporal.NewDay(2021, time.March, 1)
	m := temporal.MonthPeriod(lo)
	reg := geo.Default()
	us, _ := reg.ByCode("US")
	lat, lon := reg.RectOf(us).Center()
	mkRec := func(d temporal.Day, ut update.Type) update.Record {
		return update.Record{
			ElementType: osm.Way, Day: d, Country: uint16(us), Lat: lat, Lon: lon,
			RoadType: 5, UpdateType: ut, ChangesetID: 1,
		}
	}
	var daily []update.Record
	for d := m.Start(); d <= m.End(); d++ {
		recs := []update.Record{mkRec(d, update.Create), mkRec(d, update.ProvisionalUpdate)}
		daily = append(daily, recs...)
		if err := ing.AppendDay(d, recs); err != nil {
			t.Fatal(err)
		}
	}
	e, err := NewEngine(ix, Options{LevelOptimization: true})
	if err != nil {
		t.Fatal(err)
	}
	before, err := e.Analyze(Query{From: m.Start(), To: m.End(), Countries: []string{"United States"}, GroupBy: GroupBy{UpdateType: true}})
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Rows) != 2 {
		t.Fatalf("before rows = %+v", before.Rows)
	}

	// Refined: every provisional update is actually a metadata update.
	var refined []update.Record
	for _, r := range daily {
		if r.UpdateType == update.ProvisionalUpdate {
			r.UpdateType = update.MetadataUpdate
		}
		refined = append(refined, r)
	}
	if err := ing.ReplaceMonth(m, refined); err != nil {
		t.Fatal(err)
	}
	after, err := e.Analyze(Query{From: m.Start(), To: m.End(), Countries: []string{"United States"}, GroupBy: GroupBy{UpdateType: true}})
	if err != nil {
		t.Fatal(err)
	}
	if after.Total != before.Total {
		t.Errorf("refinement changed total: %d -> %d", before.Total, after.Total)
	}
	var sawMeta, sawGeom bool
	for _, r := range after.Rows {
		if r.UpdateType == "metadata" {
			sawMeta = true
		}
		if r.UpdateType == "geometry" {
			sawGeom = true
		}
	}
	if !sawMeta || sawGeom {
		t.Errorf("refined rows = %+v", after.Rows)
	}

	// Errors: wrong period level, out-of-month record.
	if err := ing.ReplaceMonth(temporal.DayPeriod(lo), refined); err == nil {
		t.Error("non-month period accepted")
	}
	bad := []update.Record{mkRec(m.End()+1, update.Create)}
	if err := ing.ReplaceMonth(m, bad); err == nil {
		t.Error("out-of-month record accepted")
	}
}

func TestExplainMatchesExecution(t *testing.T) {
	f := getFixture(t)
	e := newEngine(t, f, DefaultOptions())
	queries := []Query{
		{From: f.lo, To: f.hi},
		{From: f.lo + 3, To: f.hi - 4, GroupBy: GroupBy{Date: ByWeek}},
		{From: f.lo, To: f.hi, GroupBy: GroupBy{Date: ByMonth}},
	}
	for i, q := range queries {
		ex, err := e.Explain(q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Analyze(q)
		if err != nil {
			t.Fatal(err)
		}
		if ex.Fetches != res.Stats.CubesFetched {
			t.Errorf("query %d: explain fetches %d, actual %d", i, ex.Fetches, res.Stats.CubesFetched)
		}
		if ex.DiskReads != res.Stats.DiskReads {
			t.Errorf("query %d: explain disk %d, actual %d", i, ex.DiskReads, res.Stats.DiskReads)
		}
		var buf bytes.Buffer
		ex.Print(&buf)
		if buf.Len() == 0 {
			t.Error("empty explain output")
		}
	}
	// Explain validates like Analyze.
	if _, err := e.Explain(Query{From: f.hi, To: f.lo}); err == nil {
		t.Error("inverted window accepted")
	}
	if _, err := e.Explain(Query{From: f.lo, To: f.hi, Countries: []string{"Narnia"}}); err == nil {
		t.Error("unknown country accepted")
	}
	// Disjoint window explains as empty.
	ex, err := e.Explain(Query{From: f.hi + 100, To: f.hi + 200})
	if err != nil || !ex.Empty {
		t.Errorf("disjoint window: %+v, %v", ex, err)
	}
	var buf bytes.Buffer
	ex.Print(&buf)
}

func TestConcurrentAnalyze(t *testing.T) {
	// The engine must serve concurrent queries safely (the dashboard is a
	// multi-user web service). Run a mix of query shapes in parallel and
	// verify each against its serial result.
	f := getFixture(t)
	e := newEngine(t, f, DefaultOptions())
	queries := []Query{
		{From: f.lo, To: f.hi, GroupBy: GroupBy{Country: true}},
		{From: f.lo + 5, To: f.hi - 5, GroupBy: GroupBy{ElementType: true, Date: ByWeek}},
		{From: f.lo, To: f.hi, Countries: []string{"Europe"}, GroupBy: GroupBy{UpdateType: true}},
		{From: f.lo + 20, To: f.hi, GroupBy: GroupBy{RoadType: true}},
	}
	want := make([]*Result, len(queries))
	for i, q := range queries {
		res, err := e.Analyze(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				qi := (w + i) % len(queries)
				res, err := e.Analyze(queries[qi])
				if err != nil {
					errs <- err
					return
				}
				if res.Total != want[qi].Total || len(res.Rows) != len(want[qi].Rows) {
					errs <- fmt.Errorf("query %d: concurrent result differs", qi)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestEngineOverEmptyIndex(t *testing.T) {
	dir := t.TempDir()
	ix, err := tindex.Create(dir, cube.ScaledSchema(10, 5), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	e, err := NewEngine(ix, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Analyze(Query{From: 0, To: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 0 || len(res.Rows) != 0 {
		t.Errorf("empty index should return empty result: %+v", res)
	}
	ex, err := e.Explain(Query{From: 0, To: 100})
	if err != nil || !ex.Empty {
		t.Errorf("empty index explain: %+v, %v", ex, err)
	}
}

func TestPercentageZeroDenominator(t *testing.T) {
	// A country with updates but no recorded network size reports 0%, not
	// NaN or Inf.
	f := getFixture(t)
	e, err := NewEngine(f.ix, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// No SetNetworkSizes: all denominators are zero.
	res, err := e.Analyze(Query{
		From: f.lo, To: f.hi,
		GroupBy:    GroupBy{Country: true},
		Percentage: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.Percentage != 0 {
			t.Fatalf("zero denominator should give 0%%, got %f for %s", r.Percentage, r.Country)
		}
	}
}

func TestPercentageUsesSnapshotHistory(t *testing.T) {
	// Two snapshots: the network doubles between months. A percentage query
	// grouped by month must divide each bucket by the size in effect then.
	dir := t.TempDir()
	schema := cube.ScaledSchema(geo.Default().NumValues(), 25)
	ix, err := tindex.Create(dir, schema, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	ing := NewIngestor(ix)
	reg := geo.Default()
	us, _ := reg.ByCode("US")
	lat, lon := reg.RectOf(us).Center()

	jan := temporal.MonthPeriod(temporal.NewDay(2021, time.January, 1))
	feb := temporal.MonthPeriod(temporal.NewDay(2021, time.February, 1))
	for d := jan.Start(); d <= feb.End(); d++ {
		recs := []update.Record{{
			ElementType: osm.Way, Day: d, Country: uint16(us), Lat: lat, Lon: lon,
			RoadType: 1, UpdateType: update.Create,
		}}
		if err := ing.AppendDay(d, recs); err != nil {
			t.Fatal(err)
		}
	}
	e, err := NewEngine(ix, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	e.AddNetworkSizeSnapshot(jan.End(), map[int]uint64{us: 100})
	e.AddNetworkSizeSnapshot(feb.End(), map[int]uint64{us: 200})

	res, err := e.Analyze(Query{
		From: jan.Start(), To: feb.End(),
		Countries:  []string{"United States"},
		GroupBy:    GroupBy{Date: ByMonth},
		Percentage: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	near := func(got, want float64) bool {
		d := got - want
		return d < 1e-9 && d > -1e-9
	}
	// January: 31 updates / size 100; February: 28 / size 200.
	if got, want := res.Rows[0].Percentage, 31.0; !near(got, want) {
		t.Errorf("January pct = %f, want %f", got, want)
	}
	if got, want := res.Rows[1].Percentage, 14.0; !near(got, want) {
		t.Errorf("February pct = %f, want %f", got, want)
	}
	// Whole-window (ungrouped) query normalizes by the window-end snapshot.
	res2, err := e.Analyze(Query{
		From: jan.Start(), To: feb.End(),
		Countries:  []string{"United States"},
		Percentage: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res2.Rows[0].Percentage, 59.0/200*100; !near(got, want) {
		t.Errorf("window pct = %f, want %f", got, want)
	}
	// AsOf accessors.
	if e.NetworkSizeAsOf(us, jan.End()) != 100 || e.NetworkSize(us) != 200 {
		t.Error("snapshot accessors wrong")
	}
}

func TestRefreshCacheAfterAppend(t *testing.T) {
	dir := t.TempDir()
	schema := cube.ScaledSchema(10, 5)
	ix, err := tindex.Create(dir, schema, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	ing := NewIngestor(ix)
	day := temporal.NewDay(2021, time.May, 1)
	rec := update.Record{ElementType: osm.Way, Day: day, Country: 1, RoadType: 1, UpdateType: update.Create}
	if err := ing.AppendDay(day, []update.Record{rec}); err != nil {
		t.Fatal(err)
	}

	e, err := NewEngine(ix, Options{CacheSlots: 16, Allocation: cache.Allocation{Alpha: 1}, LevelOptimization: true})
	if err != nil {
		t.Fatal(err)
	}
	if !e.Cache().Contains(temporal.DayPeriod(day)) {
		t.Fatal("day 1 should be preloaded")
	}

	// Append another day: it is not cached until RefreshCache runs.
	rec2 := rec
	rec2.Day = day + 1
	if err := ing.AppendDay(day+1, []update.Record{rec2}); err != nil {
		t.Fatal(err)
	}
	if e.Cache().Contains(temporal.DayPeriod(day + 1)) {
		t.Fatal("new day cached before refresh")
	}
	if err := e.RefreshCache(); err != nil {
		t.Fatal(err)
	}
	if !e.Cache().Contains(temporal.DayPeriod(day + 1)) {
		t.Error("new day not cached after refresh")
	}
	res, err := e.Analyze(Query{From: day, To: day + 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DiskReads != 0 {
		t.Errorf("refreshed cache should serve both days: %+v", res.Stats)
	}
}

func TestGranularityStrings(t *testing.T) {
	if None.String() != "none" || ByDay.String() != "day" || ByYear.String() != "year" {
		t.Error("granularity names wrong")
	}
	if ByWeek.Level() != temporal.Weekly || ByMonth.Level() != temporal.Monthly {
		t.Error("granularity levels wrong")
	}
}
