package core

import (
	"fmt"
	"io"
	"time"

	"rased/internal/obs"
	"rased/internal/temporal"
)

// QueryTrace is the execution record of one traced Analyze call: the cubes
// actually read per bucket with their cache residency (the plan as executed,
// not as predicted by Explain), the level mix, page I/O, and stage timings.
// Requested with Query.Trace or the server's debug=trace parameter.
type QueryTrace struct {
	Buckets      []BucketPlan   `json:"buckets,omitempty"`
	PlanLevels   map[string]int `json:"plan_levels,omitempty"` // level name -> cubes read
	CubesFetched int            `json:"cubes_fetched"`
	CacheHits    int            `json:"cache_hits"`
	DiskReads    int            `json:"disk_reads"`
	// PageReads is the number of store pages read on behalf of this query:
	// one per hot-tier cube, the extent's slot count per cold-tier cube. A
	// read shared with an overlapping query through the singleflight group
	// counts for every query that consumed it, so the figure is stable
	// across identical runs regardless of what else is in flight. Pages read
	// while reconstructing a cube in degraded mode are not included (the
	// period is marked Fallback in its bucket instead).
	PageReads  int64       `json:"page_reads"`
	Stages     []obs.Stage `json:"stages,omitempty"`
	TotalNanos int64       `json:"total_nanos"`
}

// Print renders the trace for terminal use (rased-query -trace).
func (t *QueryTrace) Print(w io.Writer) {
	fmt.Fprintf(w, "trace: %d cubes (%d cached, %d from disk), %d page reads, %s total\n",
		t.CubesFetched, t.CacheHits, t.DiskReads, t.PageReads,
		time.Duration(t.TotalNanos))
	for lvl := 0; lvl < temporal.NumLevels; lvl++ {
		name := temporal.Level(lvl).String()
		if n := t.PlanLevels[name]; n > 0 {
			fmt.Fprintf(w, "  level %-8s ×%d\n", name, n)
		}
	}
	for _, s := range t.Stages {
		fmt.Fprintf(w, "  stage %-16s %s\n", s.Name, time.Duration(s.Nanos))
	}
}

// traceBuilder accumulates a QueryTrace during one Analyze call. A nil
// builder (tracing off) makes every method a no-op, so the execution path
// threads it unconditionally.
type traceBuilder struct {
	tr        *obs.Trace
	pages     int64
	buckets   []BucketPlan
	bucketIdx map[string]int
	levels    map[string]int
}

func (e *Engine) newTraceBuilder() *traceBuilder {
	return &traceBuilder{
		tr:        obs.NewTrace(),
		bucketIdx: make(map[string]int),
		levels:    make(map[string]int),
	}
}

// stage times a named phase; call the returned closure at phase end.
func (tb *traceBuilder) stage(name string) func() {
	if tb == nil {
		return func() {}
	}
	return tb.tr.StartStage(name)
}

// addPeriod records one executed cube fetch under its date bucket.
func (tb *traceBuilder) addPeriod(bucket rowKey, p temporal.Period, cached, fallback bool) {
	if tb == nil {
		return
	}
	label := ""
	if bucket.hasPeriod {
		label = bucket.p.String()
	}
	i, ok := tb.bucketIdx[label]
	if !ok {
		i = len(tb.buckets)
		tb.bucketIdx[label] = i
		tb.buckets = append(tb.buckets, BucketPlan{Bucket: label})
	}
	tb.buckets[i].Periods = append(tb.buckets[i].Periods, PeriodPlan{
		Period:   p.String(),
		Level:    p.Level.String(),
		Cached:   cached,
		Fallback: fallback,
	})
	tb.levels[p.Level.String()]++
}

// addPages credits n store pages to the query's read tally.
func (tb *traceBuilder) addPages(n int) {
	if tb == nil {
		return
	}
	tb.pages += int64(n)
}

// finish attaches the completed trace to the result. Call after Stats (and
// ElapsedNanos) are final.
func (tb *traceBuilder) finish(e *Engine, res *Result) {
	if tb == nil {
		return
	}
	res.Trace = &QueryTrace{
		Buckets:      tb.buckets,
		PlanLevels:   tb.levels,
		CubesFetched: res.Stats.CubesFetched,
		CacheHits:    res.Stats.CacheHits,
		DiskReads:    res.Stats.DiskReads,
		PageReads:    tb.pages,
		Stages:       tb.tr.Stages(),
		TotalNanos:   res.Stats.ElapsedNanos,
	}
}
