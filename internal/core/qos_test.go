package core

// Result-cache correctness at the engine level: the epoch-stamped cache must
// never serve a row from a retired epoch while the live pipeline folds new
// images underneath it (run with -race via make ci), entries must die at
// TTL, and failed executions must never be cached.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"rased/internal/cube"
	"rased/internal/exec"
	"rased/internal/temporal"
	"rased/internal/tindex"
)

// liveIndex builds a private small index (the shared fixture must not be
// mutated by epoch publishes) with days days of a one-cell-per-day cube, in
// live mode.
func liveIndex(t *testing.T, days int) *tindex.Index {
	t.Helper()
	ix, err := tindex.Create(t.TempDir(), cube.ScaledSchema(5, 5), temporal.NumLevels)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	lo := temporal.NewDay(2021, time.March, 1)
	for i := 0; i < days; i++ {
		cb := cube.New(ix.Schema())
		cb.Add(0, 0, 0, 0, 1)
		if err := ix.AppendDay(lo+temporal.Day(i), cb); err != nil {
			t.Fatal(err)
		}
	}
	ix.EnableLive()
	return ix
}

// TestResultCacheEpochMonotoneUnderFolds is the stale-epoch regression test:
// concurrent readers re-issue one identical live query (exactly what the
// result cache is keyed to serve) while a publisher folds 150 epochs into
// the hot day. Every reader's observed total must be non-decreasing — a
// single backwards step means the cache served a result computed against a
// retired epoch — and the final answer must account for every fold.
func TestResultCacheEpochMonotoneUnderFolds(t *testing.T) {
	const days, folds = 10, 150
	ix := liveIndex(t, days)
	eng, err := NewEngine(ix, Options{
		ResultCacheTTL:   time.Second,
		ResultCacheSlots: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, _ := ix.Coverage()
	hot := hi + 1
	publish := func(c *cube.Cube) {
		t.Helper()
		ep, err := ix.PublishEpoch(map[temporal.Period]*cube.Cube{temporal.DayPeriod(hot): c.Clone()})
		if err != nil {
			t.Error(err)
			return
		}
		eng.MarkLiveUpdate(ep, temporal.DayPeriod(hot))
	}
	hotCube := cube.New(ix.Schema())
	hotCube.Add(0, 0, 0, 0, 1)
	publish(hotCube)

	q := Query{From: lo, To: hot}
	ctx := context.Background()
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var last uint64
			for {
				select {
				case <-done:
					return
				default:
				}
				res, err := eng.AnalyzeContext(ctx, q)
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if res.Total < last {
					t.Errorf("reader %d: total went backwards: %d after %d (stale-epoch cache hit)",
						r, res.Total, last)
					return
				}
				last = res.Total
			}
		}(r)
	}
	for i := 0; i < folds; i++ {
		hotCube.Add(0, 0, 0, 0, 1)
		publish(hotCube)
	}
	close(done)
	wg.Wait()

	res, err := eng.AnalyzeContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(days + 1 + folds); res.Total != want {
		t.Fatalf("final total = %d, want %d (some fold was lost)", res.Total, want)
	}
}

// TestResultCacheHitAndTTL: an identical repeat is served from the cache
// (and marked as such), and the entry dies after the TTL.
func TestResultCacheHitAndTTL(t *testing.T) {
	ix := liveIndex(t, 5)
	eng, err := NewEngine(ix, Options{
		ResultCacheTTL:   30 * time.Millisecond,
		ResultCacheSlots: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, _ := ix.Coverage()
	q := Query{From: lo, To: hi, GroupBy: GroupBy{Country: true}}
	first, err := eng.Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.ResultCacheHit {
		t.Fatal("first execution marked as a cache hit")
	}
	second, err := eng.Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Stats.ResultCacheHit {
		t.Fatal("identical repeat missed the result cache")
	}
	if second.Total != first.Total || len(second.Rows) != len(first.Rows) {
		t.Fatalf("cached answer differs: %d/%d rows, %d/%d total",
			len(second.Rows), len(first.Rows), second.Total, first.Total)
	}
	// Served rows are caller-owned copies: mutating them must not poison the
	// cached image (the serving tier sorts and truncates in place).
	if len(second.Rows) > 0 {
		second.Rows[0].Count = 1 << 40
	}
	third, err := eng.Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if !third.Stats.ResultCacheHit || third.Total != first.Total {
		t.Fatal("cache entry corrupted by caller mutation")
	}
	for _, r := range third.Rows {
		if r.Count == 1<<40 {
			t.Fatal("caller mutation leaked into the cached rows")
		}
	}
	time.Sleep(60 * time.Millisecond)
	fourth, err := eng.Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if fourth.Stats.ResultCacheHit {
		t.Fatal("cache served an entry past its TTL")
	}
}

// TestResultCacheNeverCachesFailures: a failing execution must not leave a
// cache entry — a transient failure pinned for the TTL would turn one error
// into many.
func TestResultCacheNeverCachesFailures(t *testing.T) {
	ix := liveIndex(t, 5)
	eng, err := NewEngine(ix, Options{
		ResultCacheTTL:   time.Second,
		ResultCacheSlots: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, _ := ix.Coverage()
	bad := Query{From: lo, To: hi, Countries: []string{"no-such-country"}}
	for i := 0; i < 2; i++ {
		if _, err := eng.Analyze(bad); err == nil {
			t.Fatal("query naming an unknown country succeeded")
		}
	}
	met := eng.ResultCacheMetrics()
	if hits := met.Hits.Value(); hits != 0 {
		t.Fatalf("failing query produced %d cache hits", hits)
	}
	if misses := met.Misses.Value(); misses != 2 {
		t.Fatalf("misses = %d, want 2 (both failing executions probed)", misses)
	}
}

// TestResultCacheKeyedByQueryIdentity: distinct queries must not collide,
// and filter order must not split identical queries into distinct entries.
func TestResultCacheKeyedByQueryIdentity(t *testing.T) {
	ix := liveIndex(t, 5)
	eng, err := NewEngine(ix, Options{
		ResultCacheTTL:   time.Second,
		ResultCacheSlots: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, _ := ix.Coverage()
	countries := ix.Schema().Countries
	a := Query{From: lo, To: hi, Countries: []string{countries[0], countries[1]}}
	b := Query{From: lo, To: hi, Countries: []string{countries[1], countries[0]}}
	if _, err := eng.Analyze(a); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Analyze(b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.ResultCacheHit {
		t.Fatal("filter order split one query identity into two cache entries")
	}
	narrower := Query{From: lo, To: hi - 1, Countries: []string{countries[0], countries[1]}}
	res2, err := eng.Analyze(narrower)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.ResultCacheHit {
		t.Fatal("different window served from another query's cache entry")
	}
}

// TestQoSTenantThrottleSheds: the engine-level limiter sheds an over-budget
// tenant with exec.ErrThrottled (and a retry hint) while other tenants stay
// unaffected.
func TestQoSTenantThrottleSheds(t *testing.T) {
	ix := liveIndex(t, 5)
	eng, err := NewEngine(ix, Options{TenantRate: 0.001, TenantBurst: 2})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, _ := ix.Coverage()
	q := Query{From: lo, To: hi}
	hot := exec.WithTenant(context.Background(), "hog")
	var throttled bool
	for i := 0; i < 5; i++ {
		if _, err := eng.AnalyzeContext(hot, q); err != nil {
			if !errors.Is(err, exec.ErrThrottled) {
				t.Fatalf("unexpected error type: %v", err)
			}
			if exec.RetryAfter(err, 0) <= 0 {
				t.Fatal("throttled error carries no retry hint")
			}
			throttled = true
			break
		}
	}
	if !throttled {
		t.Fatal("hog tenant burst through a 2-query budget unshed")
	}
	other := exec.WithTenant(context.Background(), "quiet")
	if _, err := eng.AnalyzeContext(other, q); err != nil {
		t.Fatalf("unrelated tenant shed alongside the hog: %v", err)
	}
}
