package workload

import (
	"math"
	"strings"
	"testing"
	"time"

	"rased/internal/exec"
	"rased/internal/temporal"
)

func testConfig(seed int64) Config {
	lo := temporal.NewDay(2021, time.January, 1)
	hi := temporal.NewDay(2021, time.June, 30)
	cfg := Defaults(lo, hi, []string{"Germany", "France", "United States"})
	cfg.Seed = seed
	return cfg
}

// TestGoldenDeterminism pins the generator: the same seed must produce a
// byte-identical trace, run to run — BENCH_qos.json depends on it.
func TestGoldenDeterminism(t *testing.T) {
	a, err := Generate(testConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(testConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := a.String(), b.String()
	if sa != sb {
		t.Fatal("same seed produced different traces")
	}
	if len(a.Events) == 0 {
		t.Fatal("empty trace")
	}
	// Different seeds must actually differ (the stream is live, not inert).
	c, err := Generate(testConfig(43))
	if err != nil {
		t.Fatal(err)
	}
	if c.String() == sa {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestTraceShape checks structural invariants: sorted arrivals, all three
// classes present, windows inside coverage, sessions internally ordered.
func TestTraceShape(t *testing.T) {
	cfg := testConfig(7)
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var seen [exec.NumClasses]int
	lastAt := time.Duration(-1)
	for _, e := range tr.Events {
		if e.At < lastAt {
			t.Fatal("events not sorted by arrival")
		}
		lastAt = e.At
		seen[e.Class]++
		if e.Query.From < cfg.CovLo || e.Query.To > cfg.CovHi || e.Query.To < e.Query.From {
			t.Fatalf("query window [%s, %s] escapes coverage [%s, %s]",
				e.Query.From, e.Query.To, cfg.CovLo, cfg.CovHi)
		}
		if !strings.HasPrefix(e.Tenant, "t") {
			t.Fatalf("tenant %q not in canonical form", e.Tenant)
		}
	}
	for cl := exec.ClassInteractive; cl < exec.NumClasses; cl++ {
		if seen[cl] == 0 {
			t.Fatalf("trace contains no %v events", cl)
		}
	}
	if seen[exec.ClassInteractive] <= seen[exec.ClassBulk] {
		t.Fatalf("interactive (%d) should dominate bulk (%d)",
			seen[exec.ClassInteractive], seen[exec.ClassBulk])
	}
}

// TestZipfPopulation checks the tenant popularity distribution is Zipf-like
// within tolerance: log(count) vs log(rank) is near-linear with a negative
// slope, and the head dominates the tail.
func TestZipfPopulation(t *testing.T) {
	cfg := testConfig(11)
	cfg.Sessions = 2000 // enough mass for a stable distribution
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := tr.TenantCounts()
	if len(counts) < 5 {
		t.Fatalf("only %d tenants active; want a population", len(counts))
	}
	// Head dominance: the most popular tenant must hold a large multiple of
	// the median tenant's traffic.
	median := counts[len(counts)/2].Count
	if counts[0].Count < 5*median {
		t.Fatalf("head tenant %d vs median %d: distribution is too flat for Zipf",
			counts[0].Count, median)
	}
	// Rank-frequency slope via least squares over log-log points. A Zipf
	// population with s=1.4 should fit a clearly negative slope; tolerate a
	// broad band since the session layer adds noise.
	var sx, sy, sxx, sxy float64
	n := float64(len(counts))
	for i, c := range counts {
		x := math.Log(float64(i + 1))
		y := math.Log(float64(c.Count))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	slope := (n*sxy - sx*sy) / (n*sxx - sx*sx)
	if slope > -0.5 || slope < -3.0 {
		t.Fatalf("log-log rank-frequency slope = %.2f, want in [-3.0, -0.5]", slope)
	}
}

// TestRepeatShare checks the trace carries enough identical-query repeats to
// make a result cache worthwhile: the session replays and API polling must
// put the ceiling well above the 30% hit-rate gate.
func TestRepeatShare(t *testing.T) {
	tr, err := Generate(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if share := tr.RepeatShare(); share < 0.4 {
		t.Fatalf("repeat share = %.2f, want >= 0.40 (the cache-hit ceiling)", share)
	}
}

func TestConfigValidation(t *testing.T) {
	base := testConfig(1)
	for name, mut := range map[string]func(*Config){
		"no tenants":      func(c *Config) { c.Tenants = 0 },
		"no sessions":     func(c *Config) { c.Sessions = 0 },
		"inverted window": func(c *Config) { c.CovLo, c.CovHi = c.CovHi+1, c.CovLo },
		"bad zipf":        func(c *Config) { c.ZipfS = 0.9 },
		"bad shares":      func(c *Config) { c.InteractiveShare = 0.9; c.APIShare = 0.5 },
	} {
		cfg := base
		mut(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("%s: Generate accepted invalid config", name)
		}
	}
}
