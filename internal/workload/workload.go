// Package workload is a deterministic, seeded model of realistic dashboard
// traffic. Real RASED users do not issue uniform random queries: a few
// tenants dominate (Zipf's law over dashboard popularity), a user's
// successive queries are correlated (an overview leads to a zoom-in leads to
// a drill-down over the same region), dashboards re-issue identical queries
// on refresh, and interactive tiles share the serving tier with programmatic
// API callers and bulk exports. The generator reproduces that structure from
// a single seed: the same seed yields a byte-identical trace, so benchmark
// figures and chaos runs built on it are exactly reproducible.
//
// The model has three layers:
//
//   - Population: tenants drawn from a Zipf distribution, so tenant 0
//     appears in far more sessions than tenant 40.
//   - Sessions: Markov state machines per class. Interactive sessions walk
//     overview → zoom → drill → refresh; API sessions repeat one query on a
//     fixed period; bulk sessions issue a few full-coverage scans.
//   - Arrivals: every event carries a simulated arrival offset; interactive
//     steps follow short exponential think times, API steps a fixed period,
//     bulk steps long gaps. Session starts spread uniformly over the trace
//     duration.
//
// Queries draw windows from a small palette of anchors and spans, so the
// popular-query overlap a real dashboard exhibits (many tenants looking at
// "the last month") emerges naturally — that overlap is what the QoS result
// cache exists to exploit.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"rased/internal/core"
	"rased/internal/exec"
	"rased/internal/temporal"
)

// Config parameterizes a trace. The zero value is invalid; use Defaults and
// override.
type Config struct {
	// Seed fixes every random choice in the trace.
	Seed int64
	// Tenants is the population size; session tenants are drawn Zipf(S, V)
	// over [0, Tenants).
	Tenants int
	ZipfS   float64
	ZipfV   float64
	// Sessions is how many sessions the trace contains.
	Sessions int
	// Duration is the simulated wall-clock span session starts spread over.
	Duration time.Duration
	// CovLo and CovHi bound every query window (the index coverage the
	// trace will run against).
	CovLo, CovHi temporal.Day
	// Countries is the catalog of country names drill-downs filter on.
	Countries []string
	// InteractiveShare and APIShare split sessions across classes; the
	// remainder is bulk. Shares must sum to <= 1.
	InteractiveShare, APIShare float64
}

// Defaults returns the standard trace configuration over the given coverage
// window: 40 tenants with strong skew, a 60/30/10 interactive/api/bulk
// session mix, over one simulated minute.
func Defaults(covLo, covHi temporal.Day, countries []string) Config {
	return Config{
		Seed:             1,
		Tenants:          40,
		ZipfS:            1.4,
		ZipfV:            1,
		Sessions:         120,
		Duration:         time.Minute,
		CovLo:            covLo,
		CovHi:            covHi,
		Countries:        countries,
		InteractiveShare: 0.6,
		APIShare:         0.3,
	}
}

// Event is one query arrival in the trace.
type Event struct {
	// At is the simulated arrival offset from trace start.
	At time.Duration
	// Tenant identifies the simulated caller ("t<n>").
	Tenant string
	// Class is the event's traffic class.
	Class exec.Class
	// Session and Step locate the event in its session (Step counts from 0).
	Session, Step int
	// Query is the analysis query to execute.
	Query core.Query
}

// Trace is a generated workload: events sorted by arrival time (ties broken
// by session then step, so the order is total and deterministic).
type Trace struct {
	Events []Event
}

// Generate builds the trace for cfg. Identical configs produce identical
// traces — every choice flows from cfg.Seed through one rand stream, and no
// map iteration or wall clock is involved.
func Generate(cfg Config) (*Trace, error) {
	if cfg.Tenants < 1 || cfg.Sessions < 1 {
		return nil, fmt.Errorf("workload: Tenants and Sessions must be >= 1")
	}
	if cfg.CovHi < cfg.CovLo {
		return nil, fmt.Errorf("workload: coverage window [%s, %s] is inverted", cfg.CovLo, cfg.CovHi)
	}
	if cfg.ZipfS <= 1 || cfg.ZipfV < 1 {
		return nil, fmt.Errorf("workload: Zipf requires S > 1 and V >= 1 (got S=%v V=%v)", cfg.ZipfS, cfg.ZipfV)
	}
	if cfg.InteractiveShare < 0 || cfg.APIShare < 0 || cfg.InteractiveShare+cfg.APIShare > 1 {
		return nil, fmt.Errorf("workload: class shares must be non-negative and sum to <= 1")
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Minute
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, cfg.ZipfS, cfg.ZipfV, uint64(cfg.Tenants-1))

	g := &generator{cfg: cfg, rng: rng}
	var events []Event
	for s := 0; s < cfg.Sessions; s++ {
		tenant := "t" + strconv.FormatUint(zipf.Uint64(), 10)
		class := g.sessionClass(s)
		start := time.Duration(rng.Int63n(int64(cfg.Duration)))
		events = append(events, g.session(s, tenant, class, start)...)
	}
	sort.Slice(events, func(a, b int) bool {
		if events[a].At != events[b].At {
			return events[a].At < events[b].At
		}
		if events[a].Session != events[b].Session {
			return events[a].Session < events[b].Session
		}
		return events[a].Step < events[b].Step
	})
	return &Trace{Events: events}, nil
}

// generator holds the shared rand stream during one Generate call.
type generator struct {
	cfg Config
	rng *rand.Rand
}

// sessionClass assigns a class by position in a repeating cycle of ten
// sessions: the shares are deterministic quotas rather than per-session coin
// flips, so small traces still contain every class, and the classes
// interleave instead of clustering at one end of the sequence.
func (g *generator) sessionClass(s int) exec.Class {
	nInter := int(10*g.cfg.InteractiveShare + 0.5)
	nAPI := int(10*g.cfg.APIShare + 0.5)
	switch pos := s % 10; {
	case pos < nInter:
		return exec.ClassInteractive
	case pos < nInter+nAPI:
		return exec.ClassAPI
	default:
		return exec.ClassBulk
	}
}

// session generates one session's events.
func (g *generator) session(id int, tenant string, class exec.Class, start time.Duration) []Event {
	switch class {
	case exec.ClassInteractive:
		return g.interactiveSession(id, tenant, start)
	case exec.ClassAPI:
		return g.apiSession(id, tenant, start)
	default:
		return g.bulkSession(id, tenant, start)
	}
}

// windowSpans are the day-lengths the window palette draws from.
var windowSpans = []int{7, 14, 30, 60, 90}

// anchorSlots quantizes window starts: a coverage range has this many anchor
// positions, so many sessions land on identical windows — the popular-query
// overlap the result cache feeds on.
const anchorSlots = 8

// window picks a query window from the palette: an anchored start plus a
// span, clipped to coverage.
func (g *generator) window() (lo, hi temporal.Day) {
	covLo, covHi := g.cfg.CovLo, g.cfg.CovHi
	covDays := int(covHi-covLo) + 1
	span := windowSpans[g.rng.Intn(len(windowSpans))]
	if span > covDays {
		span = covDays
	}
	slot := g.rng.Intn(anchorSlots)
	maxStart := covDays - span
	start := 0
	if maxStart > 0 {
		start = maxStart * slot / (anchorSlots - 1)
	}
	lo = covLo + temporal.Day(start)
	hi = lo + temporal.Day(span-1)
	if hi > covHi {
		hi = covHi
	}
	return lo, hi
}

// zoom halves a window around a deterministic pivot, snapping to whole weeks
// so zoomed windows also repeat across sessions.
func (g *generator) zoom(lo, hi temporal.Day) (temporal.Day, temporal.Day) {
	days := int(hi-lo) + 1
	if days <= 7 {
		return lo, hi
	}
	half := days / 2
	half -= half % 7 // snap to weeks
	if half < 7 {
		half = 7
	}
	if g.rng.Intn(2) == 0 {
		return lo, lo + temporal.Day(half-1)
	}
	return hi - temporal.Day(half-1), hi
}

// interactiveSession is the dashboard walk: overview, then a Markov mix of
// zoom-in (narrow the window), drill-down (add a country filter and regroup),
// refresh (repeat the previous query verbatim), and fresh overviews.
func (g *generator) interactiveSession(id int, tenant string, start time.Duration) []Event {
	lo, hi := g.window()
	q := core.Query{From: lo, To: hi, GroupBy: core.GroupBy{Country: true}}
	steps := 4 + g.rng.Intn(8)
	at := start
	events := make([]Event, 0, steps)
	for i := 0; i < steps; i++ {
		events = append(events, Event{At: at, Tenant: tenant, Class: exec.ClassInteractive, Session: id, Step: i, Query: q})
		// Exponential think time, mean 200ms.
		at += time.Duration(g.rng.ExpFloat64() * float64(200*time.Millisecond))
		switch r := g.rng.Float64(); {
		case r < 0.35: // zoom-in: same filters, narrower window
			q.From, q.To = g.zoom(q.From, q.To)
		case r < 0.60: // drill-down: focus one country, regroup by element
			if len(g.cfg.Countries) > 0 {
				q.Countries = []string{g.cfg.Countries[g.rng.Intn(len(g.cfg.Countries))]}
			}
			q.GroupBy = core.GroupBy{ElementType: true, Date: core.ByWeek}
		case r < 0.85: // refresh: identical query (dashboard tile reload)
		default: // new view: fresh overview with a monthly series
			nlo, nhi := g.window()
			q = core.Query{From: nlo, To: nhi, GroupBy: core.GroupBy{Country: true, Date: core.ByMonth}}
		}
	}
	return events
}

// apiSession is a programmatic caller polling one fixed query on a period —
// the pure identical-repeat load.
func (g *generator) apiSession(id int, tenant string, start time.Duration) []Event {
	lo, hi := g.window()
	q := core.Query{From: lo, To: hi, GroupBy: core.GroupBy{Country: true, Date: core.ByDay}}
	reps := 3 + g.rng.Intn(6)
	period := time.Duration(500+g.rng.Intn(1500)) * time.Millisecond
	events := make([]Event, 0, reps)
	for i := 0; i < reps; i++ {
		events = append(events, Event{At: start + time.Duration(i)*period, Tenant: tenant,
			Class: exec.ClassAPI, Session: id, Step: i, Query: q})
	}
	return events
}

// bulkSession is an export: one or two full-coverage scans at daily
// granularity with a wide group-by — the expensive queries priority admission
// must keep out of the interactive path.
func (g *generator) bulkSession(id int, tenant string, start time.Duration) []Event {
	q := core.Query{
		From: g.cfg.CovLo, To: g.cfg.CovHi,
		GroupBy: core.GroupBy{Country: true, ElementType: true, Date: core.ByWeek},
	}
	n := 1 + g.rng.Intn(2)
	events := make([]Event, 0, n)
	at := start
	for i := 0; i < n; i++ {
		events = append(events, Event{At: at, Tenant: tenant, Class: exec.ClassBulk, Session: id, Step: i, Query: q})
		at += time.Duration(g.rng.ExpFloat64() * float64(5*time.Second))
	}
	return events
}

// String serializes the trace canonically, one event per line: the golden
// format the determinism test compares byte-for-byte. Query identity uses
// core.QueryKey, the same normalization the result cache keys on.
func (t *Trace) String() string {
	var b strings.Builder
	for _, e := range t.Events {
		b.WriteString("t=")
		b.WriteString(strconv.FormatInt(e.At.Microseconds(), 10))
		b.WriteString(" tenant=")
		b.WriteString(e.Tenant)
		b.WriteString(" class=")
		b.WriteString(e.Class.String())
		b.WriteString(" s=")
		b.WriteString(strconv.Itoa(e.Session))
		b.WriteString(" i=")
		b.WriteString(strconv.Itoa(e.Step))
		b.WriteString(" q=")
		b.WriteString(core.QueryKey(e.Query))
		b.WriteByte('\n')
	}
	return b.String()
}

// TenantCounts returns how many events each tenant issued, as a sorted list
// of (tenant, count) with the most active first — the empirical popularity
// distribution the Zipf sanity test checks.
type TenantCount struct {
	Tenant string
	Count  int
}

// TenantCounts ranks tenants by event count, descending (ties by name so the
// ranking is deterministic).
func (t *Trace) TenantCounts() []TenantCount {
	counts := map[string]int{}
	for _, e := range t.Events {
		counts[e.Tenant]++
	}
	out := make([]TenantCount, 0, len(counts))
	for tenant, n := range counts {
		out = append(out, TenantCount{Tenant: tenant, Count: n})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Count != out[b].Count {
			return out[a].Count > out[b].Count
		}
		return out[a].Tenant < out[b].Tenant
	})
	return out
}

// RepeatShare is the fraction of events whose query identity already
// appeared earlier in the trace — an upper bound on the result-cache hit
// rate an infinite-TTL cache could reach on this trace.
func (t *Trace) RepeatShare() float64 {
	if len(t.Events) == 0 {
		return 0
	}
	seen := map[string]bool{}
	repeats := 0
	for _, e := range t.Events {
		k := core.QueryKey(e.Query)
		if seen[k] {
			repeats++
		}
		seen[k] = true
	}
	return float64(repeats) / float64(len(t.Events))
}
