package rased

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"rased/internal/core"
	"rased/internal/crawl"
	"rased/internal/cube"
	"rased/internal/geo"
	"rased/internal/obs"
	"rased/internal/osmxml"
	"rased/internal/temporal"
	"rased/internal/tindex"
	"rased/internal/update"
	"rased/internal/warehouse"
)

// FileBuildConfig parameterizes BuildFromFiles: a deployment built from
// on-disk OSM artifacts instead of the in-process simulator. The artifacts
// directory must hold one pair of files per day:
//
//	<YYYY-MM-DD>.osc             the day's OsmChange diff
//	<YYYY-MM-DD>.changesets.xml  the day's changeset metadata
//
// (osmgen's DayArtifacts.WriteDayFiles emits exactly this layout; real OSM
// daily diffs and changeset dumps convert to it 1:1.) Days must be
// consecutive.
type FileBuildConfig struct {
	// Dir is the deployment directory to create.
	Dir string
	// ArtifactsDir holds the daily .osc / .changesets.xml pairs.
	ArtifactsDir string
	// HistoryFile optionally points at a full-history dump (<osm> document
	// sorted by element). When set, every complete month is refined with the
	// monthly crawler's four-way update classification, and Percentage(*)
	// denominators come from the history; when empty, update types stay
	// provisional and denominators are estimated from creates minus deletes.
	HistoryFile string
	// Schema overrides the cube schema (nil = the full paper-scale schema).
	Schema *cube.Schema
	// Levels is the index depth 1..4; 0 = 4.
	Levels int
	// SkipWarehouse skips the sample-update store.
	SkipWarehouse bool
	// Obs, when non-nil, receives the build's metrics (ingest throughput,
	// index page I/O).
	Obs *obs.Registry
}

// dayFiles is one day's discovered artifact pair.
type dayFiles struct {
	day        temporal.Day
	diffPath   string
	changesets string
	partial    bool // diff present but changeset file missing
}

// ErrPartialDay marks a day directory whose diff was written but whose
// changeset file is missing — the downloader died mid-publish. Trailing
// partial days are skipped (they will complete on the next run); a partial day
// in the middle of the sequence is unrecoverable and errors with this in the
// chain.
var ErrPartialDay = fmt.Errorf("rased: partially written day artifacts")

// discoverDays scans the artifacts directory and returns the day sequence plus
// the dates of trailing partially-written days it skipped.
func discoverDays(dir string) ([]dayFiles, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("rased: read artifacts dir: %w", err)
	}
	var days []dayFiles
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".osc") {
			continue
		}
		date := strings.TrimSuffix(name, ".osc")
		d, err := temporal.ParseDay(date)
		if err != nil {
			return nil, nil, fmt.Errorf("rased: artifact %q is not named <date>.osc: %w", name, err)
		}
		df := dayFiles{day: d, diffPath: filepath.Join(dir, name), changesets: filepath.Join(dir, date+".changesets.xml")}
		if _, err := os.Stat(df.changesets); err != nil {
			df.partial = true
		}
		days = append(days, df)
	}
	if len(days) == 0 {
		return nil, nil, fmt.Errorf("rased: no .osc artifacts in %s", dir)
	}
	sort.Slice(days, func(a, b int) bool { return days[a].day < days[b].day })
	// Trailing partial days are a normal crash artifact of the downloader:
	// drop them with a warning so the complete prefix still ingests. A partial
	// day that is NOT at the tail would leave a hole in the sequence, which no
	// later run can repair — that stays an error.
	var skipped []string
	for len(days) > 0 && days[len(days)-1].partial {
		skipped = append(skipped, days[len(days)-1].day.String())
		days = days[:len(days)-1]
	}
	for i, j := 0, len(skipped)-1; i < j; i, j = i+1, j-1 {
		skipped[i], skipped[j] = skipped[j], skipped[i] // chronological order
	}
	if len(days) == 0 {
		return nil, nil, fmt.Errorf("%w: no complete days in %s (partial: %s)",
			ErrPartialDay, dir, strings.Join(skipped, ", "))
	}
	for _, df := range days {
		if df.partial {
			return nil, nil, fmt.Errorf("%w: day %s has a diff but no changeset file", ErrPartialDay, df.day)
		}
	}
	for i := 1; i < len(days); i++ {
		if days[i].day != days[i-1].day+1 {
			return nil, nil, fmt.Errorf("rased: artifact days are not consecutive: %s then %s",
				days[i-1].day, days[i].day)
		}
	}
	return days, skipped, nil
}

// BuildFromFiles constructs a deployment from on-disk OSM artifacts.
func BuildFromFiles(cfg FileBuildConfig) (*BuildReport, error) {
	days, skipped, err := discoverDays(cfg.ArtifactsDir)
	if err != nil {
		return nil, err
	}
	schema := cfg.Schema
	if schema == nil {
		schema = cube.DefaultSchema()
	}
	levels := cfg.Levels
	if levels == 0 {
		levels = temporal.NumLevels
	}
	ix, err := tindex.Create(cfg.Dir, schema, levels)
	if err != nil {
		return nil, err
	}
	defer ix.Close()

	var wh *warehouse.Store
	if !cfg.SkipWarehouse {
		wh, err = warehouse.Open(filepath.Join(cfg.Dir, warehouseFile))
		if err != nil {
			return nil, err
		}
		defer wh.Close()
	}

	reg := geo.Default()
	ing := core.NewIngestor(ix)
	csIdx := crawl.BuildChangesetIndex(nil)
	rep := BuildReport{SkippedPartialDays: skipped}
	maxCountry, maxRoad := len(schema.Countries), len(schema.RoadTypes)
	if cfg.Obs != nil {
		cfg.Obs.MustRegister(ing.Metrics().All()...)
		cfg.Obs.MustRegister(ix.Store().Metrics().All()...)
		if wh != nil {
			cfg.Obs.MustRegister(wh.Metrics().All()...)
			cfg.Obs.MustRegister(wh.Heap().Store().Metrics().All()...)
		}
	}

	// Network-size estimator for the no-history path: live elements per
	// country tracked as creates minus deletes.
	netEst := make(map[int]int64)

	var allDaily []update.Record
	for _, df := range days {
		recs, err := crawlDayFiles(df, csIdx, reg)
		if err != nil {
			return nil, err
		}
		kept := recs[:0]
		for _, r := range recs {
			if int(r.Country) < maxCountry && int(r.RoadType) < maxRoad {
				kept = append(kept, r)
			} else {
				rep.DroppedRecords++
			}
		}
		if err := ing.AppendDay(df.day, kept); err != nil {
			return nil, err
		}
		rep.Records += len(kept)
		allDaily = append(allDaily, kept...)
		for _, r := range kept {
			switch r.UpdateType {
			case update.Create:
				netEst[int(r.Country)]++
				for _, z := range reg.ZonesOf(int(r.Country), r.Lat, r.Lon) {
					netEst[z]++
				}
			case update.Delete:
				netEst[int(r.Country)]--
				for _, z := range reg.ZonesOf(int(r.Country), r.Lat, r.Lon) {
					netEst[z]--
				}
			}
		}
	}
	rep.Days = len(days)

	lo, hi := days[0].day, days[len(days)-1].day
	sizes := make(map[int]uint64)
	if cfg.HistoryFile != "" {
		refined, histSizes, err := refineFromHistory(cfg.HistoryFile, csIdx, reg, ing, lo, hi, maxCountry, maxRoad)
		if err != nil {
			return nil, err
		}
		// Warehouse: refined records for complete months, daily for the rest.
		if wh != nil {
			covered := make(map[temporal.Period]bool)
			for m := range refined {
				covered[m] = true
				if err := wh.Add(refined[m]); err != nil {
					return nil, err
				}
			}
			for _, r := range allDaily {
				if !covered[temporal.MonthPeriod(r.Day)] {
					if err := wh.Add([]update.Record{r}); err != nil {
						return nil, err
					}
				}
			}
		}
		sizes = histSizes
	} else {
		if wh != nil {
			if err := wh.Add(allDaily); err != nil {
				return nil, err
			}
		}
		for c, n := range netEst {
			if n > 0 {
				sizes[c] = uint64(n)
			}
		}
	}

	doc := netSizesDoc{Snapshots: []netSnapshot{{AsOf: int(hi), Sizes: sizes}}}
	if err := writeJSON(filepath.Join(cfg.Dir, netSizesFile), doc); err != nil {
		return nil, err
	}
	meta := deploymentMeta{Countries: maxCountry, RoadTypes: maxRoad, Levels: levels}
	if err := writeJSON(filepath.Join(cfg.Dir, deploymentFile), meta); err != nil {
		return nil, err
	}
	if err := ix.Sync(); err != nil {
		return nil, err
	}
	rep.CubePages = ix.Store().NumPages()
	rep.IndexBytes = ix.Store().SizeBytes()
	if wh != nil {
		if err := wh.Flush(); err != nil {
			return nil, err
		}
		rep.WarehouseRecords = wh.Count()
	}
	return &rep, nil
}

// AppendFromFiles extends an existing deployment with newly published daily
// artifacts: days already covered are skipped, the rest are crawled and
// appended in order (with the usual end-of-period rollups), the warehouse
// grows, and the network-size estimates advance by creates minus deletes.
// This is the paper's production mode — a daily cron over freshly downloaded
// diff and changeset files.
func AppendFromFiles(dir, artifactsDir string) (*BuildReport, error) {
	return appendFromFiles(dir, artifactsDir, nil)
}

// AppendFromFilesObs is AppendFromFiles with the run's metrics (ingest
// throughput, index page I/O) registered into reg.
func AppendFromFilesObs(dir, artifactsDir string, reg *obs.Registry) (*BuildReport, error) {
	return appendFromFiles(dir, artifactsDir, reg)
}

func appendFromFiles(dir, artifactsDir string, obsReg *obs.Registry) (*BuildReport, error) {
	days, skipped, err := discoverDays(artifactsDir)
	if err != nil {
		return nil, err
	}
	var meta deploymentMeta
	if err := readJSON(filepath.Join(dir, deploymentFile), &meta); err != nil {
		return nil, fmt.Errorf("rased: open %s: %w", dir, err)
	}
	if meta.Countries <= 0 || meta.Countries > geo.Default().NumValues() ||
		meta.RoadTypes <= 0 {
		return nil, fmt.Errorf("rased: corrupt deployment metadata in %s", dir)
	}
	schema := cube.ScaledSchema(meta.Countries, meta.RoadTypes)
	ix, err := tindex.Open(dir, schema)
	if err != nil {
		return nil, err
	}
	defer ix.Close()

	var wh *warehouse.Store
	whPath := filepath.Join(dir, warehouseFile)
	if _, err := os.Stat(whPath); err == nil {
		wh, err = warehouse.Open(whPath)
		if err != nil {
			return nil, err
		}
		defer wh.Close()
	}

	// Continue the network-size estimator from the latest snapshot.
	var history netSizesDoc
	sizes := make(map[int]uint64)
	if doc, err := loadNetSizes(filepath.Join(dir, netSizesFile)); err == nil {
		history = *doc
		if n := len(history.Snapshots); n > 0 {
			for k, v := range history.Snapshots[n-1].Sizes {
				sizes[k] = v
			}
		}
	}

	reg := geo.Default()
	ing := core.NewIngestor(ix)
	csIdx := crawl.BuildChangesetIndex(nil)
	rep := BuildReport{SkippedPartialDays: skipped}
	if obsReg != nil {
		obsReg.MustRegister(ing.Metrics().All()...)
		obsReg.MustRegister(ix.Store().Metrics().All()...)
		if wh != nil {
			obsReg.MustRegister(wh.Metrics().All()...)
			obsReg.MustRegister(wh.Heap().Store().Metrics().All()...)
		}
	}
	_, hi, covered := ix.Coverage()

	for _, df := range days {
		if covered && df.day <= hi {
			continue // already ingested
		}
		recs, err := crawlDayFiles(df, csIdx, reg)
		if err != nil {
			return nil, err
		}
		kept := recs[:0]
		for _, r := range recs {
			if int(r.Country) < meta.Countries && int(r.RoadType) < meta.RoadTypes {
				kept = append(kept, r)
			} else {
				rep.DroppedRecords++
			}
		}
		if err := ing.AppendDay(df.day, kept); err != nil {
			return nil, err
		}
		if wh != nil {
			if err := wh.Add(kept); err != nil {
				return nil, err
			}
		}
		for _, r := range kept {
			delta := int64(0)
			switch r.UpdateType {
			case update.Create:
				delta = 1
			case update.Delete:
				delta = -1
			}
			if delta == 0 {
				continue
			}
			applySizeDelta(sizes, int(r.Country), delta)
			for _, z := range reg.ZonesOf(int(r.Country), r.Lat, r.Lon) {
				applySizeDelta(sizes, z, delta)
			}
		}
		rep.Records += len(kept)
		rep.Days++
	}

	if rep.Days > 0 {
		if _, newHi, ok := ix.Coverage(); ok {
			history.Snapshots = append(history.Snapshots, netSnapshot{AsOf: int(newHi), Sizes: sizes})
		}
	}
	if err := writeJSON(filepath.Join(dir, netSizesFile), history); err != nil {
		return nil, err
	}
	if err := ix.Sync(); err != nil {
		return nil, err
	}
	rep.CubePages = ix.Store().NumPages()
	rep.IndexBytes = ix.Store().SizeBytes()
	if wh != nil {
		if err := wh.Flush(); err != nil {
			return nil, err
		}
		rep.WarehouseRecords = wh.Count()
	}
	return &rep, nil
}

func applySizeDelta(sizes map[int]uint64, key int, delta int64) {
	if delta > 0 {
		sizes[key] += uint64(delta)
	} else if sizes[key] > 0 {
		sizes[key]--
	}
}

// crawlDayFiles parses one day's artifact pair and runs the daily crawler.
func crawlDayFiles(df dayFiles, csIdx crawl.ChangesetIndex, reg *geo.Registry) ([]update.Record, error) {
	csF, err := os.Open(df.changesets)
	if err != nil {
		return nil, err
	}
	sets, err := osmxml.ReadChangesets(csF)
	csF.Close()
	if err != nil {
		return nil, fmt.Errorf("rased: %s: %w", df.changesets, err)
	}
	csIdx.Add(sets)

	diffF, err := os.Open(df.diffPath)
	if err != nil {
		return nil, err
	}
	ch, err := osmxml.ReadChange(diffF)
	diffF.Close()
	if err != nil {
		return nil, fmt.Errorf("rased: %s: %w", df.diffPath, err)
	}
	recs, _, err := crawl.Daily(ch, csIdx, reg)
	return recs, err
}

// refineFromHistory runs the monthly crawler over the history file, replaces
// every complete month in the index, and computes network sizes as of hi.
// Returns the refined records per replaced month.
func refineFromHistory(path string, csIdx crawl.ChangesetIndex, reg *geo.Registry,
	ing *core.Ingestor, lo, hi temporal.Day, maxCountry, maxRoad int) (map[temporal.Period][]update.Record, map[int]uint64, error) {

	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	recs, _, err := crawl.Monthly(osmxml.NewHistoryReader(f), csIdx, reg, lo, hi)
	f.Close()
	if err != nil {
		return nil, nil, fmt.Errorf("rased: monthly crawl of %s: %w", path, err)
	}

	byMonth := make(map[temporal.Period][]update.Record)
	for _, r := range recs {
		if int(r.Country) >= maxCountry || int(r.RoadType) >= maxRoad {
			continue
		}
		byMonth[temporal.MonthPeriod(r.Day)] = append(byMonth[temporal.MonthPeriod(r.Day)], r)
	}
	refined := make(map[temporal.Period][]update.Record)
	for m, mrecs := range byMonth {
		if m.Start() < lo || m.End() > hi {
			continue // incomplete month: keep the daily cubes
		}
		if err := ing.ReplaceMonth(m, mrecs); err != nil {
			return nil, nil, err
		}
		refined[m] = mrecs
	}

	f, err = os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	sizes, err := crawl.NetworkSizes(osmxml.NewHistoryReader(f), csIdx, reg, hi)
	f.Close()
	if err != nil {
		return nil, nil, err
	}
	return refined, sizes, nil
}
