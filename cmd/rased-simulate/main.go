// Command rased-simulate writes a synthetic OSM world to disk as the file
// artifacts RASED crawls: one OsmChange diff and one changeset-metadata file
// per day, plus (optionally) a full-history dump. Feed the output directory
// to rased-ingest -from-files, which is the same pipeline a deployment over
// real planet.openstreetmap.org files would use.
//
// Example:
//
//	rased-simulate -dir /tmp/osm-files -days 90 -history
//	rased-ingest -dir /tmp/rased -from-files /tmp/osm-files -history-file /tmp/osm-files/history.osm
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"rased/internal/obs"
	"rased/internal/osmgen"
	"rased/internal/temporal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rased-simulate: ")

	var (
		dir       = flag.String("dir", "", "output directory for the artifacts (required)")
		days      = flag.Int("days", 90, "days of history to simulate")
		updates   = flag.Int("updates", 300, "mean updates per day")
		seed      = flag.Int64("seed", 1, "world seed")
		start     = flag.String("start", "2021-01-01", "first simulated day (YYYY-MM-DD)")
		seedElems = flag.Int("seed-elements", 2000, "elements pre-created before day one")
		history   = flag.Bool("history", false, "also write history.osm (full-history dump)")
		metrics   = flag.Bool("metrics", false, "dump generation metrics (Prometheus text) to stderr on exit")
	)
	flag.Parse()
	if *dir == "" {
		flag.Usage()
		os.Exit(2)
	}
	startDay, err := temporal.ParseDay(*start)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		log.Fatal(err)
	}

	g := osmgen.New(osmgen.Config{
		Seed:          *seed,
		Start:         startDay,
		UpdatesPerDay: *updates,
		SeedElements:  *seedElems,
	})
	reg := obs.NewRegistry()
	daysCtr := obs.NewCounter("rased_simulate_days_total", "Day artifact pairs written.")
	updatesCtr := obs.NewCounter("rased_simulate_updates_total", "Simulated update records written.")
	dayTiming := obs.NewHistogram("rased_simulate_day_seconds", "Wall time to generate and write one day.", obs.DefLatencyBuckets)
	reg.MustRegister(daysCtr, updatesCtr, dayTiming)

	var nUpdates int
	for i := 0; i < *days; i++ {
		t0 := time.Now()
		art := g.NextDay()
		if err := art.WriteDayFiles(*dir); err != nil {
			log.Fatal(err)
		}
		dayTiming.Observe(time.Since(t0))
		daysCtr.Inc()
		updatesCtr.Add(int64(len(art.Change.Items)))
		nUpdates += len(art.Change.Items)
	}
	fmt.Printf("wrote %d days (%d updates) to %s\n", *days, nUpdates, *dir)
	if *metrics {
		defer reg.WritePrometheus(os.Stderr)
	}

	if *history {
		path, err := g.WriteHistoryFile(*dir, startDay-1, startDay+temporal.Day(*days))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote full history (%d element versions) to %s\n", g.HistoryLen(), path)
	}
}
