// Command rased-ingest builds a RASED deployment: it simulates an OSM world,
// runs the daily (and optionally monthly) crawlers, and bulk-loads the
// hierarchical temporal index, the sample warehouse, and the network-size
// table into a deployment directory.
//
// Example:
//
//	rased-ingest -dir /tmp/rased -days 365 -updates 300 -refine
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"rased"
	"rased/internal/cube"
	"rased/internal/geo"
	"rased/internal/obs"
	"rased/internal/osmgen"
	"rased/internal/roads"
	"rased/internal/temporal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rased-ingest: ")

	var (
		dir       = flag.String("dir", "", "deployment directory to create (required)")
		days      = flag.Int("days", 365, "days of history to simulate")
		updates   = flag.Int("updates", 300, "mean updates per day")
		seed      = flag.Int64("seed", 1, "world seed")
		start     = flag.String("start", "2020-01-01", "first simulated day (YYYY-MM-DD)")
		seedElems = flag.Int("seed-elements", 2000, "elements pre-created before day one")
		roadTypes = flag.Int("road-types", roads.Num(), "road-type dimension size (schema scale)")
		levels    = flag.Int("levels", 4, "index levels 1..4")
		refine    = flag.Bool("refine", false, "run the monthly crawler at month ends")
		noWH      = flag.Bool("no-warehouse", false, "skip the sample-update warehouse")
		fromFiles = flag.String("from-files", "", "ingest on-disk OSM artifacts from this directory (see rased-simulate) instead of simulating in-process")
		histFile  = flag.String("history-file", "", "full-history dump for monthly refinement (with -from-files)")
		appendNew = flag.Bool("append", false, "with -from-files: append newly published days to an existing deployment")
		metrics   = flag.Bool("metrics", false, "dump the build's metrics snapshot (Prometheus text) to stderr on exit")
	)
	flag.Parse()
	if *dir == "" {
		flag.Usage()
		os.Exit(2)
	}

	var schema *cube.Schema
	if *roadTypes != roads.Num() {
		schema = cube.ScaledSchema(geo.Default().NumValues(), *roadTypes)
	}

	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
	}

	var rep *rased.BuildReport
	var err error
	switch {
	case *fromFiles != "" && *appendNew:
		rep, err = rased.AppendFromFilesObs(*dir, *fromFiles, reg)
	case *fromFiles != "":
		rep, err = rased.BuildFromFiles(rased.FileBuildConfig{
			Dir:           *dir,
			ArtifactsDir:  *fromFiles,
			HistoryFile:   *histFile,
			Schema:        schema,
			Levels:        *levels,
			SkipWarehouse: *noWH,
			Obs:           reg,
		})
	default:
		var startDay temporal.Day
		startDay, err = temporal.ParseDay(*start)
		if err != nil {
			log.Fatal(err)
		}
		rep, err = rased.Build(rased.BuildConfig{
			Dir:  *dir,
			Days: *days,
			Gen: osmgen.Config{
				Seed:          *seed,
				Start:         startDay,
				UpdatesPerDay: *updates,
				SeedElements:  *seedElems,
			},
			Schema:            schema,
			Levels:            *levels,
			MonthlyRefinement: *refine,
			SkipWarehouse:     *noWH,
			Obs:               reg,
		})
	}
	if err != nil {
		log.Fatal(err)
	}
	for _, day := range rep.SkippedPartialDays {
		log.Printf("warning: skipped partially written day %s (diff present, changeset file missing); rerun after the downloader completes it", day)
	}
	fmt.Printf("deployment built in %s\n", *dir)
	fmt.Printf("  days ingested:     %d\n", rep.Days)
	fmt.Printf("  updates ingested:  %d\n", rep.Records)
	fmt.Printf("  warehouse records: %d\n", rep.WarehouseRecords)
	fmt.Printf("  dropped (schema):  %d\n", rep.DroppedRecords)
	fmt.Printf("  cube pages:        %d (%.1f MB)\n", rep.CubePages, float64(rep.IndexBytes)/(1<<20))
	if reg != nil {
		reg.WritePrometheus(os.Stderr)
	}
}
