// Command rased-server serves a RASED deployment as the dashboard backend:
// a JSON API plus a minimal HTML dashboard at /.
//
// Example:
//
//	rased-server -dir /tmp/rased -addr :8080
//
// Scale-out serving splits the same binary into two roles (see DESIGN.md
// §11): shards execute partition-restricted sub-plans over a deployment, and
// a stateless router plans, scatters, and merges:
//
//	rased-server -shard -shard-id s0 -cluster-map map.json -dir /tmp/rased -addr :9090
//	rased-server -router -cluster-map map.json -addr :8080
package main

import (
	"context"
	"flag"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"rased"
	"rased/internal/cache"
	"rased/internal/cluster"
	"rased/internal/core"
	"rased/internal/live"
	"rased/internal/obs"
	"rased/internal/osmgen"
	"rased/internal/server"
	"rased/internal/temporal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rased-server: ")

	var (
		dir       = flag.String("dir", "", "deployment directory (required)")
		addr      = flag.String("addr", ":8080", "listen address")
		slots     = flag.Int("cache", 512, "cube cache slots (0 disables caching)")
		alpha     = flag.Float64("alpha", 0.4, "cache ratio for daily cubes")
		beta      = flag.Float64("beta", 0.35, "cache ratio for weekly cubes")
		gamma     = flag.Float64("gamma", 0.2, "cache ratio for monthly cubes")
		theta     = flag.Float64("theta", 0.05, "cache ratio for yearly cubes")
		noOpt     = flag.Bool("no-level-opt", false, "disable the level optimizer (debugging)")
		accessLog = flag.Bool("access-log", true, "log every request (Debug-level access log)")
		metrics   = flag.Bool("metrics", false, "dump the metrics snapshot (Prometheus text) to stderr on shutdown")

		workers      = flag.Int("workers", runtime.GOMAXPROCS(0), "fetch worker pool size shared by all queries (<2 fetches serially)")
		singleflight = flag.Bool("singleflight", true, "deduplicate identical concurrent cube fetches across queries")
		maxInflight  = flag.Int("max-inflight", 0, "max concurrently executing queries (0 admits everything)")
		queue        = flag.Int("queue", 0, "max queries queued for admission beyond -max-inflight; excess get 503")
		queryTimeout = flag.Duration("query-timeout", 0, "per-query execution deadline (0 disables; timeouts get 504)")

		cachePolicy  = flag.String("cache-policy", "preload", "cube cache policy: preload, lru, or sharded")
		cacheShards  = flag.Int("cache-shards", 0, "shard count for -cache-policy=sharded (0 picks from GOMAXPROCS, rounded to a power of two)")
		cacheBytes   = flag.Int64("cache-bytes", 0, "byte budget for the demand cube cache (0 = slots only; requires -cache-policy=lru or sharded)")
		pooledDecode = flag.Bool("pooled-decode", false, "decode cache misses into pooled cubes (requires -cache-policy=lru or sharded)")
		coalesce     = flag.Bool("coalesce-reads", false, "read runs of adjacent cube pages with one I/O")
		scalarAgg    = flag.Bool("scalar-agg", false, "disable the vectorized aggregation kernels (debugging)")

		compact         = flag.Bool("compact", false, "run a background compactor migrating cold periods into compressed extents")
		compactInterval = flag.Duration("compact-interval", time.Hour, "sweep period for -compact")
		compactKeepDays = flag.Int("compact-keep-days", 7, "trailing days -compact leaves in the hot tier")

		liveMode     = flag.Bool("live", false, "fold simulated OsmChange replication diffs into the index continuously")
		diffInterval = flag.Duration("diff-interval", 2*time.Second, "replication cadence for -live (one diff per interval)")
		diffChunks   = flag.Int("diff-chunks", 60, "diffs per simulated day for -live")
		liveSeed     = flag.Int64("live-seed", 1, "PRNG seed for the -live edit generator")
		liveCompress = flag.Bool("compress-closed", false, "compact each simulated day (and its closed rollups) into the cold tier as it closes (with -live)")

		qos             = flag.Bool("qos", false, "class-priority admission + tenant/class extraction from request headers")
		tenantHeader    = flag.String("tenant-header", server.DefaultTenantHeader, "header naming the tenant for -qos (missing header = the anonymous tenant)")
		tenantRate      = flag.Float64("tenant-rate", 0, "per-tenant admission budget in queries/sec (0 disables; over-budget tenants get 429)")
		tenantBurst     = flag.Float64("tenant-burst", 0, "per-tenant token-bucket burst for -tenant-rate (0 picks a default from the rate)")
		resultCacheTTL  = flag.Duration("result-cache-ttl", 0, "epoch-stamped whole-result cache TTL (0 disables; live folds invalidate regardless)")
		resultCacheSlot = flag.Int("result-cache-slots", 4096, "result cache entry bound for -result-cache-ttl")

		readRetries  = flag.Int("read-retries", 2, "retries for transient page-read errors (0 disables)")
		retryBackoff = flag.Duration("retry-backoff", 2*time.Millisecond, "base backoff before a page-read retry (doubles per attempt, jittered)")
		noFallback   = flag.Bool("no-fallback", false, "disable degraded-mode replanning around corrupt cube pages")
		faults       = flag.String("faults", "", "fault-injection spec for resilience testing, e.g. 'kind=transient,prob=0.01' (see faultstore.ParseSpec)")
		faultSeed    = flag.Int64("fault-seed", 1, "PRNG seed for -faults")

		shardMode      = flag.Bool("shard", false, "serve as a cluster shard: internal RPC surface only (requires -cluster-map and -shard-id)")
		routerMode     = flag.Bool("router", false, "serve as a cluster router: the public API planned over shards (requires -cluster-map; -dir unused)")
		clusterMap     = flag.String("cluster-map", "", "cluster map JSON for -shard/-router")
		shardID        = flag.String("shard-id", "", "this shard's id in the cluster map (for -shard)")
		shardTimeout   = flag.Duration("shard-timeout", 10*time.Second, "router: per-attempt sub-plan RPC deadline")
		hedgeDelay     = flag.Duration("hedge-delay", 0, "router: fixed hedge delay (0 adapts to a latency percentile)")
		noHedge        = flag.Bool("no-hedge", false, "router: disable hedged requests (replica failover stays on)")
		spreadReplicas = flag.Bool("spread-replicas", true, "router: rotate which replica a sub-plan tries first")
		healthInterval = flag.Duration("health-interval", 5*time.Second, "router: shard health poll period")
	)
	flag.Parse()
	if *shardMode && *routerMode {
		log.Fatal("-shard and -router are mutually exclusive")
	}
	if *routerMode {
		runRouter(routerParams{
			addr: *addr, mapPath: *clusterMap, accessLog: *accessLog,
			queryTimeout: *queryTimeout, shardTimeout: *shardTimeout,
			hedgeDelay: *hedgeDelay, noHedge: *noHedge,
			spreadReplicas: *spreadReplicas, healthInterval: *healthInterval,
			dumpMetrics: *metrics,
		})
		return
	}
	if *dir == "" {
		flag.Usage()
		os.Exit(2)
	}

	// Priority admission needs a slot bound to schedule against; -qos with
	// the unlimited default would be rejected by the engine, so pick one.
	if *qos && *maxInflight == 0 {
		*maxInflight = 2 * runtime.GOMAXPROCS(0)
		if *queue == 0 {
			*queue = 16 * *maxInflight
		}
		log.Printf("-qos defaulted -max-inflight to %d and -queue to %d", *maxInflight, *queue)
	}
	opts := core.Options{
		CacheSlots:        *slots,
		Allocation:        cache.Allocation{Alpha: *alpha, Beta: *beta, Gamma: *gamma, Theta: *theta},
		LevelOptimization: !*noOpt,
		FetchWorkers:      *workers,
		Singleflight:      *singleflight,
		MaxInflight:       *maxInflight,
		MaxQueue:          *queue,
		CachePolicy:       *cachePolicy,
		CacheShards:       *cacheShards,
		CacheBytes:        *cacheBytes,
		PooledDecode:      *pooledDecode,
		CoalesceReads:     *coalesce,
		ScalarKernels:     *scalarAgg,
		ReadRetries:       *readRetries,
		ReadRetryBackoff:  *retryBackoff,
		DegradedFallback:  !*noFallback,
		QoSPriority:       *qos,
		TenantRate:        *tenantRate,
		TenantBurst:       *tenantBurst,
		ResultCacheTTL:    *resultCacheTTL,
		ResultCacheSlots:  *resultCacheSlot,
	}
	var oo []rased.OpenOption
	if *faults != "" {
		log.Printf("fault injection active: %s (seed %d)", *faults, *faultSeed)
		oo = append(oo, rased.WithFaultSpec(*faults, *faultSeed))
	}
	d, err := rased.OpenWith(*dir, opts, oo...)
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	if lo, hi, ok := d.Coverage(); ok {
		log.Printf("serving %s (coverage %s .. %s) on %s", *dir, lo, hi, *addr)
	} else {
		log.Printf("serving empty deployment %s on %s", *dir, *addr)
	}

	if *shardMode {
		runShard(d, *shardID, *clusterMap, *addr, *metrics)
		return
	}

	// -live folds a deterministic simulated replication stream into the
	// serving index: the generator's first day is the day after the current
	// coverage, so live epochs extend the batch-built history seamlessly.
	var (
		pipe       *live.Pipeline
		liveCancel context.CancelFunc
		liveDone   chan struct{}
	)
	if *liveMode {
		gcfg := osmgen.DefaultConfig()
		gcfg.Seed = *liveSeed
		if _, hi, ok := d.Coverage(); ok {
			gcfg.Start = hi + 1
		} else {
			gcfg.Start = temporal.NewDay(2020, time.January, 1)
		}
		pipe = live.NewPipeline(d.Index, live.Config{
			MaxCountry:     len(d.Schema.Countries),
			MaxRoad:        len(d.Schema.RoadTypes),
			Engine:         d.Engine,
			CompressClosed: *liveCompress,
		})
		d.Obs.MustRegister(pipe.Metrics().All()...)
		src := live.NewSimSource(osmgen.NewDiffStream(gcfg, *diffChunks), *diffInterval, 0)
		var ctx context.Context
		ctx, liveCancel = context.WithCancel(context.Background())
		liveDone = make(chan struct{})
		go func() {
			defer close(liveDone)
			if err := pipe.Run(ctx, src); err != nil && ctx.Err() == nil {
				log.Printf("live ingest stopped: %v", err)
			}
		}()
		log.Printf("live ingest on: one diff per %v, %d diffs per simulated day (first day %s)", *diffInterval, *diffChunks, gcfg.Start)
	}

	// -compact sweeps settled history into the compressed cold tier off the
	// query path, keeping the trailing -compact-keep-days hot (those are the
	// periods a live writer still republishes; compacting them early wastes
	// the encode on the next pull-back). The sweep coordinates with readers
	// and the fold path through the index's epoch machinery — no lock is held
	// across its I/O — so queries keep serving while history shrinks.
	var (
		compactCancel context.CancelFunc
		compactDone   chan struct{}
	)
	if *compact {
		var ctx context.Context
		ctx, compactCancel = context.WithCancel(context.Background())
		compactDone = make(chan struct{})
		keep := temporal.Day(*compactKeepDays)
		go func() {
			defer close(compactDone)
			tick := time.NewTicker(*compactInterval)
			defer tick.Stop()
			for {
				if _, hi, ok := d.Coverage(); ok {
					st, err := d.Index.CompactBefore(ctx, hi+1-keep)
					switch {
					case err != nil && ctx.Err() == nil:
						log.Printf("compactor: %v", err)
					case st.Compacted > 0:
						ts := d.Index.Tiers()
						log.Printf("compactor: %d periods -> cold (freed %d hot B, wrote %d cold B); tiers now %d hot / %d cold pages",
							st.Compacted, st.HotBytesFreed, st.ColdBytes, ts.HotPages, ts.ColdPages)
					}
				}
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
				}
			}
		}()
		log.Printf("background compactor on: every %v, keeping %d trailing days hot", *compactInterval, *compactKeepDays)
	}

	// The server's middleware logs requests at Debug; -access-log runs the
	// logger at that level so the lines show. Metrics are exported either
	// way at /metrics and /api/stats.
	level := slog.LevelInfo
	if *accessLog {
		level = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	sopts := []server.Option{
		server.WithRegistry(d.Obs),
		server.WithLogger(logger),
		server.WithQueryTimeout(*queryTimeout),
	}
	if *qos {
		sopts = append(sopts, server.WithQoS(*tenantHeader))
		log.Printf("qos on: priority admission, tenant header %s, tenant rate %.4g/s, result cache ttl %v",
			*tenantHeader, *tenantRate, *resultCacheTTL)
	}
	if pipe != nil {
		sopts = append(sopts, server.WithLiveStatus(func() server.LiveStatus {
			st := pipe.Status()
			return server.LiveStatus{Epoch: st.Epoch, Day: st.Day, Folds: st.Folds, LagSecs: st.LagSecs}
		}))
	}
	handler := http.Handler(server.New(d, sopts...))
	// Transport limits: slow or stalled clients must not pin goroutines (or
	// admission slots) forever. The write timeout bounds the whole
	// handler+response, so it sits above any per-query timeout.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}

	// Shut down cleanly on SIGINT/SIGTERM so the deployment closes properly.
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		log.Fatal(err)
	case s := <-sig:
		log.Printf("received %v, shutting down", s)
		// Stop the live pipeline first: Run checkpoints on cancellation, so
		// every published epoch is durable before the deployment closes.
		if liveCancel != nil {
			liveCancel()
			<-liveDone
		}
		if compactCancel != nil {
			compactCancel()
			<-compactDone
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		if *metrics {
			d.Obs.WritePrometheus(os.Stderr)
		}
	}
}

// runShard serves the internal RPC surface over an open deployment. Shutdown
// order matters for the router's graceful drain: the shard keeps answering
// in-flight sub-plans until Shutdown's context expires, and only then does
// the deployment close underneath it.
func runShard(d *rased.Deployment, id, mapPath, addr string, dumpMetrics bool) {
	if mapPath == "" || id == "" {
		log.Fatal("-shard requires -cluster-map and -shard-id")
	}
	m, err := cluster.LoadMap(mapPath)
	if err != nil {
		log.Fatal(err)
	}
	sh, err := cluster.NewShardServer(id, m, d.Engine, d)
	if err != nil {
		log.Fatal(err)
	}
	d.Obs.MustRegister(sh.Metrics().All()...)
	log.Printf("shard %s: map v%d, %d groups, replication %d", id, m.Version, m.Groups, m.Replication)

	srv := &http.Server{
		Addr:              addr,
		Handler:           sh.Handler(d.Obs),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		log.Fatal(err)
	case s := <-sig:
		log.Printf("received %v, draining", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		if dumpMetrics {
			d.Obs.WritePrometheus(os.Stderr)
		}
	}
}

type routerParams struct {
	addr, mapPath  string
	accessLog      bool
	queryTimeout   time.Duration
	shardTimeout   time.Duration
	hedgeDelay     time.Duration
	noHedge        bool
	spreadReplicas bool
	healthInterval time.Duration
	dumpMetrics    bool
}

// runRouter serves the public API planned over the shard tier. The router is
// stateless — no -dir — so it can restart or scale horizontally at will.
func runRouter(p routerParams) {
	if p.mapPath == "" {
		log.Fatal("-router requires -cluster-map")
	}
	m, err := cluster.LoadMap(p.mapPath)
	if err != nil {
		log.Fatal(err)
	}
	rt, err := cluster.NewRouter(m, &cluster.HTTPTransport{}, cluster.RouterConfig{
		ShardTimeout:   p.shardTimeout,
		HedgeDelay:     p.hedgeDelay,
		DisableHedging: p.noHedge,
		SpreadReplicas: p.spreadReplicas,
		HealthInterval: p.healthInterval,
	})
	if err != nil {
		log.Fatal(err)
	}
	reg := obs.NewRegistry()
	reg.MustRegister(rt.Metrics().All()...)
	log.Printf("router: map v%d, %d shards, %d groups, replication %d, serving on %s",
		m.Version, len(m.Shards), m.Groups, m.Replication, p.addr)

	healthCtx, healthCancel := context.WithCancel(context.Background())
	defer healthCancel()
	go rt.RunHealth(healthCtx)

	level := slog.LevelInfo
	if p.accessLog {
		level = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	handler := server.New(rt,
		server.WithRegistry(reg),
		server.WithLogger(logger),
		server.WithQueryTimeout(p.queryTimeout),
		server.WithClusterStatus(func() (string, any) {
			snap := rt.ClusterHealth()
			return snap.Status, snap
		}),
	)
	srv := &http.Server{
		Addr:              p.addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		log.Fatal(err)
	case s := <-sig:
		log.Printf("received %v, shutting down", s)
		// Drain the public side first so in-flight scatter-gathers finish
		// against still-serving shards; only then stop health polling.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		if p.dumpMetrics {
			reg.WritePrometheus(os.Stderr)
		}
	}
}
