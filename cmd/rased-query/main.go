// Command rased-query runs analysis and sample queries against a RASED
// deployment from the command line.
//
// Examples:
//
//	rased-query -dir /tmp/rased -from 2020-01-01 -to 2020-12-31 \
//	    -group-by country,element_type -limit 20
//	rased-query -dir /tmp/rased -from 2020-06-01 -to 2020-06-30 \
//	    -countries "United States" -sample 10
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"rased"
	"rased/internal/core"
	"rased/internal/geo"
	"rased/internal/osm"
	"rased/internal/roads"
	"rased/internal/temporal"
	"rased/internal/update"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rased-query: ")

	var (
		dir         = flag.String("dir", "", "deployment directory (required)")
		from        = flag.String("from", "", "window start YYYY-MM-DD (default: coverage start)")
		to          = flag.String("to", "", "window end YYYY-MM-DD (default: coverage end)")
		countries   = flag.String("countries", "", "comma-separated country/zone filter")
		elements    = flag.String("element-types", "", "comma-separated element type filter (node,way,relation)")
		roadsF      = flag.String("road-types", "", "comma-separated road type filter")
		updatesF    = flag.String("update-types", "", "comma-separated update type filter (create,delete,geometry,metadata)")
		groupBy     = flag.String("group-by", "", "comma-separated group-by: country,element_type,road_type,update_type")
		granularity = flag.String("granularity", "none", "date grouping: none,day,week,month,year")
		percentage  = flag.Bool("percentage", false, "report percentage of road network size")
		limit       = flag.Int("limit", 50, "max rows to print")
		sampleN     = flag.Int("sample", 0, "instead of aggregating, print N sample updates")
		seed        = flag.Int64("seed", 1, "sampling seed")
		explain     = flag.Bool("explain", false, "print the level optimizer's plan instead of executing")
		trace       = flag.Bool("trace", false, "print the executed plan, cache residency, page reads, and stage timings")
		metrics     = flag.Bool("metrics", false, "dump the deployment's metrics snapshot (Prometheus text) to stderr on exit")
	)
	flag.Parse()
	if *dir == "" {
		flag.Usage()
		os.Exit(2)
	}

	d, err := rased.Open(*dir, rased.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	if *metrics {
		defer d.Obs.WritePrometheus(os.Stderr)
	}

	lo, hi, ok := d.Coverage()
	if !ok {
		log.Fatal("deployment is empty")
	}
	if *from != "" {
		if lo, err = temporal.ParseDay(*from); err != nil {
			log.Fatal(err)
		}
	}
	if *to != "" {
		if hi, err = temporal.ParseDay(*to); err != nil {
			log.Fatal(err)
		}
	}

	split := func(s string) []string {
		if s == "" {
			return nil
		}
		parts := strings.Split(s, ",")
		for i := range parts {
			parts[i] = strings.TrimSpace(parts[i])
		}
		return parts
	}

	if *sampleN > 0 {
		runSample(d, lo, hi, split(*countries), split(*elements), split(*updatesF), split(*roadsF), *sampleN, *seed)
		return
	}

	q := rased.Query{
		From: lo, To: hi,
		Countries:    split(*countries),
		ElementTypes: split(*elements),
		RoadTypes:    split(*roadsF),
		UpdateTypes:  split(*updatesF),
		Percentage:   *percentage,
	}
	for _, g := range split(*groupBy) {
		switch g {
		case "country":
			q.GroupBy.Country = true
		case "element_type":
			q.GroupBy.ElementType = true
		case "road_type":
			q.GroupBy.RoadType = true
		case "update_type":
			q.GroupBy.UpdateType = true
		default:
			log.Fatalf("unknown group-by %q", g)
		}
	}
	switch *granularity {
	case "none":
	case "day":
		q.GroupBy.Date = core.ByDay
	case "week":
		q.GroupBy.Date = core.ByWeek
	case "month":
		q.GroupBy.Date = core.ByMonth
	case "year":
		q.GroupBy.Date = core.ByYear
	default:
		log.Fatalf("unknown granularity %q", *granularity)
	}

	if *explain {
		ex, err := d.Explain(q)
		if err != nil {
			log.Fatal(err)
		}
		ex.Print(os.Stdout)
		return
	}
	q.Trace = *trace
	res, err := d.Analyze(q)
	if err != nil {
		log.Fatal(err)
	}
	printResult(res, q, *limit)
	if res.Trace != nil {
		fmt.Println()
		res.Trace.Print(os.Stdout)
	}
}

func printResult(res *rased.Result, q rased.Query, limit int) {
	headers := []string{}
	if q.GroupBy.Date != core.None {
		headers = append(headers, "period")
	}
	if q.GroupBy.Country {
		headers = append(headers, "country")
	}
	if q.GroupBy.ElementType {
		headers = append(headers, "element")
	}
	if q.GroupBy.RoadType {
		headers = append(headers, "road type")
	}
	if q.GroupBy.UpdateType {
		headers = append(headers, "update")
	}
	for _, h := range headers {
		fmt.Printf("%-24s", h)
	}
	fmt.Printf("%12s", "count")
	if q.Percentage {
		fmt.Printf("%12s", "pct")
	}
	fmt.Println()

	for i, r := range res.Rows {
		if i >= limit {
			fmt.Printf("... %d more rows\n", len(res.Rows)-i)
			break
		}
		if q.GroupBy.Date != core.None {
			fmt.Printf("%-24s", r.Period)
		}
		if q.GroupBy.Country {
			fmt.Printf("%-24s", r.Country)
		}
		if q.GroupBy.ElementType {
			fmt.Printf("%-24s", r.ElementType)
		}
		if q.GroupBy.RoadType {
			fmt.Printf("%-24s", r.RoadType)
		}
		if q.GroupBy.UpdateType {
			fmt.Printf("%-24s", r.UpdateType)
		}
		fmt.Printf("%12d", r.Count)
		if q.Percentage {
			fmt.Printf("%11.4f%%", r.Percentage)
		}
		fmt.Println()
	}
	fmt.Printf("\ntotal %d updates in %.3f ms (%d cubes fetched, %d disk reads, %d cache hits)\n",
		res.Total, float64(res.Stats.ElapsedNanos)/1e6,
		res.Stats.CubesFetched, res.Stats.DiskReads, res.Stats.CacheHits)
}

func runSample(d *rased.Deployment, lo, hi temporal.Day, countries, elements, updateTypes, roadTypes []string, n int, seed int64) {
	reg := geo.Default()
	q := rased.SampleQuery{From: lo, To: hi, N: n, Seed: seed}
	for _, name := range countries {
		v, ok := reg.ByName(name)
		if !ok {
			log.Fatalf("unknown country %q", name)
		}
		q.Countries = append(q.Countries, v)
	}
	for _, name := range roadTypes {
		v, ok := roads.ByName(name)
		if !ok {
			log.Fatalf("unknown road type %q", name)
		}
		q.RoadTypes = append(q.RoadTypes, v)
	}
	for _, name := range elements {
		t, err := osm.ParseElementType(name)
		if err != nil {
			log.Fatal(err)
		}
		q.ElementTypes = append(q.ElementTypes, t)
	}
	for _, name := range updateTypes {
		t, err := update.ParseType(name)
		if err != nil {
			log.Fatal(err)
		}
		q.UpdateTypes = append(q.UpdateTypes, t)
	}
	recs, err := d.Sample(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s%-12s%-24s%-20s%-12s%-10s%s\n",
		"date", "element", "country", "road type", "update", "changeset", "location")
	for _, r := range recs {
		fmt.Printf("%-12s%-12s%-24s%-20s%-12s%-10d(%.4f, %.4f)\n",
			r.Day, r.ElementType, reg.Name(int(r.Country)), roads.Name(int(r.RoadType)),
			r.UpdateType, r.ChangesetID, r.Lat, r.Lon)
	}
}
