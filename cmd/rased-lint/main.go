// Command rased-lint runs RASED's project-specific static analysis: the
// rules that keep PR 1's observability wiring and PR 2's concurrency
// contract true as the tree evolves (see DESIGN.md "Enforced invariants").
//
// Usage:
//
//	rased-lint [flags] [package-prefix ...]
//
// With no arguments the whole module is checked. Arguments narrow the run to
// packages whose import path matches the prefix ("./..." and module-relative
// forms like ./internal/core are accepted).
//
// Exit status: 0 clean, 1 findings remain after the allowlist, 2 usage or
// load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rased/internal/analysis"
	"rased/internal/analysis/rules"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		rootFlag  = flag.String("C", "", "module root to lint (default: nearest go.mod above the working directory)")
		jsonOut   = flag.Bool("json", false, "emit findings as a JSON report on stdout")
		allowFlag = flag.String("allow", "", "allowlist file of audited exceptions (default: <root>/.rased-lint.allow when present)")
		ruleFlag  = flag.String("rules", "", "comma-separated rule IDs to run (default: all)")
		list      = flag.Bool("list", false, "list the available rules and exit")
		prune     = flag.Bool("prune", false, "rewrite the allowlist dropping stale entries (comments and order preserved)")
	)
	flag.Parse()

	analyzers := rules.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name(), a.Doc())
		}
		return 0
	}
	if *ruleFlag != "" {
		want := make(map[string]bool)
		for _, r := range strings.Split(*ruleFlag, ",") {
			want[strings.TrimSpace(r)] = true
		}
		var kept []analysis.Analyzer
		for _, a := range analyzers {
			if want[a.Name()] {
				kept = append(kept, a)
				delete(want, a.Name())
			}
		}
		for r := range want {
			fmt.Fprintf(os.Stderr, "rased-lint: unknown rule %q (use -list)\n", r)
			return 2
		}
		analyzers = kept
	}

	root := *rootFlag
	if root == "" {
		var err error
		if root, err = findModuleRoot(); err != nil {
			fmt.Fprintf(os.Stderr, "rased-lint: %v\n", err)
			return 2
		}
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rased-lint: %v\n", err)
		return 2
	}
	pkgs, err := loadSelected(loader, flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "rased-lint: %v\n", err)
		return 2
	}

	findings, err := analysis.Run(loader.Fset(), pkgs, analyzers, root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rased-lint: %v\n", err)
		return 2
	}

	allowPath := *allowFlag
	if allowPath == "" {
		allowPath = filepath.Join(root, ".rased-lint.allow")
	}
	allow, err := analysis.LoadAllowlist(allowPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rased-lint: %v\n", err)
		return 2
	}
	kept, suppressed, stale := allow.Filter(findings)
	for _, e := range stale {
		fmt.Fprintf(os.Stderr, "rased-lint: stale allowlist entry (fixed upstream? remove it): %s %s %s\n", e.Rule, e.Path, e.Match)
	}
	if *prune {
		// Staleness is only meaningful for a full run: an entry for a rule or
		// package excluded from this run suppressed nothing by construction.
		if *ruleFlag != "" || len(flag.Args()) > 0 {
			fmt.Fprintln(os.Stderr, "rased-lint: -prune requires a full run (no -rules, no package arguments)")
			return 2
		}
		n, err := analysis.PruneFile(allowPath, stale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rased-lint: %v\n", err)
			return 2
		}
		if n > 0 {
			fmt.Fprintf(os.Stderr, "rased-lint: pruned %d stale entry(ies) from %s\n", n, allowPath)
		}
	}

	if *jsonOut {
		if err := analysis.WriteJSON(os.Stdout, loader.ModulePath, kept, len(suppressed)); err != nil {
			fmt.Fprintf(os.Stderr, "rased-lint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range kept {
			fmt.Println(f)
		}
		if len(kept) > 0 {
			fmt.Fprintf(os.Stderr, "rased-lint: %d finding(s) in %d package(s)\n", len(kept), len(pkgs))
		}
	}
	if len(kept) > 0 {
		return 1
	}
	return 0
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the working directory (use -C)")
		}
		dir = parent
	}
}

// loadSelected loads the module packages matching the argument prefixes (all
// packages for no arguments or "./...").
func loadSelected(loader *analysis.Loader, args []string) ([]*analysis.Package, error) {
	var prefixes []string
	for _, arg := range args {
		if arg == "./..." || arg == "..." {
			prefixes = nil
			break
		}
		arg = strings.TrimSuffix(arg, "/...")
		arg = strings.TrimPrefix(arg, "./")
		arg = strings.TrimSuffix(arg, "/")
		if arg == "." || arg == "" {
			prefixes = nil
			break
		}
		if !strings.HasPrefix(arg, loader.ModulePath) {
			arg = loader.ModulePath + "/" + arg
		}
		prefixes = append(prefixes, arg)
	}
	if len(prefixes) == 0 {
		return loader.LoadAll()
	}
	var out []*analysis.Package
	for _, ip := range loader.Packages() {
		for _, p := range prefixes {
			if ip == p || strings.HasPrefix(ip, p+"/") {
				pkg, err := loader.Load(ip)
				if err != nil {
					return nil, err
				}
				out = append(out, pkg)
				break
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no packages match %v", args)
	}
	return out, nil
}
