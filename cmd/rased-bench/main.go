// Command rased-bench regenerates the paper's evaluation figures (Section
// VIII) on a scaled benchmark deployment:
//
//	rased-bench -fig 7         cache size sweep (Figure 7)
//	rased-bench -fig 8         index levels vs storage (Figure 8)
//	rased-bench -fig 9         RASED-F / RASED-O / RASED ablation (Figure 9)
//	rased-bench -fig 10        RASED vs scan-based DBMS (Figure 10)
//	rased-bench -fig size      index size accounting (Section VI-A)
//	rased-bench -fig alloc     cache allocation ablation (Section VII-A)
//	rased-bench -fig evict     cache policy ablation: preload vs LRU
//	rased-bench -fig conc      concurrent clients: serial vs parallel fetches
//	rased-bench -fig hotpath   data-plane hot path: kernels, pooling, sharding, coalescing
//	rased-bench -fig faults    availability under injected storage faults, fallback on vs off
//	rased-bench -fig footprint compressed cold tier vs dense pages: bytes/update, cache density, latency
//	rased-bench -fig live      live ingest: epoch publication under concurrent dashboard load
//	rased-bench -fig cluster   scale-out: scatter-gather QPS 1→4→8 shards, hedged tail latency
//	rased-bench -fig qos       multi-tenant QoS: priority admission, result cache, composed chaos
//	rased-bench -fig examples  the example queries of Figures 2-5
//	rased-bench -fig all       everything
//
// Absolute times are not comparable to the paper (scaled data, injected disk
// model); the reported shapes are. See EXPERIMENTS.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"rased"
	"rased/internal/benchx"
	"rased/internal/cube"
	"rased/internal/faultstore"
	"rased/internal/osmgen"
	"rased/internal/temporal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rased-bench: ")

	var (
		fig     = flag.String("fig", "all", "figure to regenerate: 7, 8, 9, 10, size, examples, all")
		years   = flag.Int("years", 16, "covered period for timing figures")
		updates = flag.Int("updates", 150, "mean updates per day")
		queries = flag.Int("queries", 100, "queries per measured point")
		latency = flag.Duration("latency", 200*time.Microsecond, "injected per-page disk latency")
		seed    = flag.Int64("seed", 1, "workload seed")
		workers = flag.Int("workers", 64, "fetch worker pool size for the concurrency experiment")
		quick   = flag.Bool("quick", false, "shrink the concurrency sweep for a smoke run")
		out     = flag.String("out", "", "also write the hotpath report as JSON to this path")
		faults  = flag.String("faults", "", "explicit fault-injection spec for -fig faults, overriding the rate sweep (see faultstore.ParseSpec)")
	)
	flag.Parse()

	needWS := map[string]bool{"7": true, "9": true, "10": true, "size": true, "alloc": true, "evict": true, "conc": true, "all": true}[*fig]
	var ws *benchx.Workspace
	if needWS {
		cfg := benchx.DefaultWorkspaceConfig()
		cfg.Years = *years
		cfg.UpdatesPerDay = *updates
		cfg.Seed = *seed
		cfg.ReadLatency = *latency
		cfg.WithDBMS = *fig == "10" || *fig == "all"
		log.Printf("building %d-year workspace (%d updates/day)...", cfg.Years, cfg.UpdatesPerDay)
		start := time.Now()
		var err error
		ws, err = benchx.NewWorkspace(cfg)
		if err != nil {
			log.Fatal(err)
		}
		defer ws.Close()
		log.Printf("workspace ready: %d records, %d cube pages, %.1f MB (%.1fs)",
			ws.Records, ws.Index.Store().NumPages(),
			float64(ws.Index.Store().SizeBytes())/(1<<20), time.Since(start).Seconds())
	}

	switch *fig {
	case "7":
		runFig7(ws, *queries, *seed)
	case "8":
		runFig8()
	case "9":
		runFig9(ws, *queries, *seed)
	case "10":
		runFig10(ws, *queries, *seed)
	case "size":
		runSize(ws)
	case "alloc":
		runAlloc(ws, *queries, *seed)
	case "evict":
		runEvict(ws, *queries, *seed)
	case "conc":
		runConc(ws, *workers, *quick, *seed)
	case "hotpath":
		runHotpath(*updates, *workers, *quick, *seed, *out)
	case "faults":
		runFaults(*queries, *quick, *seed, *faults)
	case "footprint":
		runFootprint(*quick, *seed)
	case "live":
		runLive(*quick, *seed)
	case "cluster":
		runCluster(*quick, *seed)
	case "qos":
		runQoS(*quick, *seed)
	case "examples":
		runExamples(*seed, *updates)
	case "all":
		runFig7(ws, *queries, *seed)
		fmt.Println()
		runFig8()
		fmt.Println()
		runFig9(ws, *queries, *seed)
		fmt.Println()
		runFig10(ws, *queries, *seed)
		fmt.Println()
		runSize(ws)
		fmt.Println()
		runAlloc(ws, *queries, *seed)
		fmt.Println()
		runEvict(ws, *queries, *seed)
		fmt.Println()
		runConc(ws, *workers, *quick, *seed)
		fmt.Println()
		runHotpath(*updates, *workers, *quick, *seed, *out)
		fmt.Println()
		runFaults(*queries, *quick, *seed, *faults)
		fmt.Println()
		runFootprint(*quick, *seed)
		fmt.Println()
		runLive(*quick, *seed)
		fmt.Println()
		runCluster(*quick, *seed)
		fmt.Println()
		runQoS(*quick, *seed)
		fmt.Println()
		runExamples(*seed, *updates)
	default:
		log.Fatalf("unknown figure %q", *fig)
	}
}

func runFig7(ws *benchx.Workspace, queries int, seed int64) {
	points, err := benchx.Fig7(ws,
		[]int{32, 64, 128, 256, 512, 1000},
		[]int{1, 3, 6, 12},
		queries, seed)
	if err != nil {
		log.Fatal(err)
	}
	benchx.PrintFig7(os.Stdout, points)
}

func runFig8() {
	// The paper's full-scale schema: the 4 MB cubes of Section VI-A.
	benchx.PrintFig8(os.Stdout, benchx.Fig8(cube.DefaultSchema(), 16))
}

func runFig9(ws *benchx.Workspace, queries int, seed int64) {
	// The flat variant reads every daily cube; cap its repetitions so the
	// sweep finishes in reasonable time at 16 years.
	if queries > 10 {
		queries = 10
	}
	points, err := benchx.Fig9(ws, []int{1, 2, 4, 8, 12, 16}, queries, seed)
	if err != nil {
		log.Fatal(err)
	}
	benchx.PrintFig9(os.Stdout, points)
}

func runFig10(ws *benchx.Workspace, queries int, seed int64) {
	if ws.Table == nil {
		log.Fatal("figure 10 needs a workspace built with the DBMS baseline (-fig 10 or -fig all)")
	}
	if queries > 10 {
		queries = 10
	}
	points, err := benchx.Fig10(ws, []int{1, 2, 4, 8, 12, 16}, queries, seed)
	if err != nil {
		log.Fatal(err)
	}
	benchx.PrintFig10(os.Stdout, points)
}

func runSize(ws *benchx.Workspace) {
	fmt.Println("Index size accounting (Section VI-A)")
	counts := ws.Index.NumCubes()
	names := []string{"daily", "weekly", "monthly", "yearly"}
	total := 0
	for lvl, name := range names {
		n := counts[temporal.Level(lvl)]
		total += n
		fmt.Printf("  %-8s %6d cubes\n", name, n)
	}
	fmt.Printf("  %-8s %6d cubes, %d bytes/page, %.1f MB total\n",
		"all", total, ws.Index.Store().PageSize(),
		float64(ws.Index.Store().SizeBytes())/(1<<20))
	fmt.Printf("  (paper at full scale: ~7,000 cubes x 4 MB pages = ~28 GB)\n")
}

func runAlloc(ws *benchx.Workspace, queries int, seed int64) {
	points, err := benchx.AblationAllocation(ws, benchx.StandardAllocations(),
		128, []int{1, 3, 6, 12}, queries, seed)
	if err != nil {
		log.Fatal(err)
	}
	benchx.PrintAblationAllocation(os.Stdout, points)
}

func runEvict(ws *benchx.Workspace, queries int, seed int64) {
	points, err := benchx.AblationEviction(ws, 128, []int{1, 3, 6, 12}, queries, seed)
	if err != nil {
		log.Fatal(err)
	}
	benchx.PrintAblationEviction(os.Stdout, points)
}

func runConc(ws *benchx.Workspace, workers int, quick bool, seed int64) {
	ctx := context.Background()
	clients := []int{1, 2, 4, 8, 16, 32, 64}
	perClient := 30
	overloadPer := 20
	if quick {
		clients = []int{1, 4, 16}
		perClient = 6
		overloadPer = 5
	}
	points, err := benchx.FigConc(ctx, ws, clients, perClient, workers, seed)
	if err != nil {
		log.Fatal(err)
	}
	benchx.PrintFigConc(os.Stdout, points)
	fmt.Println()
	over, err := benchx.OverloadConc(ctx, ws, workers, 4, 2, 48, overloadPer, seed)
	if err != nil {
		log.Fatal(err)
	}
	benchx.PrintOverload(os.Stdout, over)
}

func runHotpath(updates, workers int, quick bool, seed int64, out string) {
	// The hot-path experiment uses its own deployment: a wider schema whose
	// cubes are closer to the paper's full-scale cell counts, so the
	// aggregation kernels are measured against realistic per-cube work. The
	// shared workspace's small cubes would understate the scalar path's cost.
	cfg := benchx.DefaultWorkspaceConfig()
	cfg.Years = 4
	cfg.Countries = 80
	cfg.RoadTypes = 30
	cfg.UpdatesPerDay = updates
	cfg.Seed = seed
	clients := []int{1, 4, 16}
	perClient := 64
	if quick {
		cfg.Years = 2
		clients = []int{1, 4}
		perClient = 8
	}
	log.Printf("building %d-year hotpath workspace (%d countries x %d road types)...",
		cfg.Years, cfg.Countries, cfg.RoadTypes)
	ws, err := benchx.NewWorkspace(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer ws.Close()
	rep, err := benchx.FigHotpath(context.Background(), ws, clients, perClient, workers, seed)
	if err != nil {
		log.Fatal(err)
	}
	benchx.PrintHotpath(os.Stdout, rep)
	if out != "" {
		if err := benchx.WriteHotpathJSON(out, rep); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", out)
	}
}

func runFaults(queries int, quick bool, seed int64, spec string) {
	// The chaos harness builds its own small deployment per point; the shared
	// workspace is not used, so availability numbers come from the exact code
	// path the -race chaos tests certify.
	rates := []float64{0, 0.001, 0.01}
	if quick {
		queries = 1 // FigFaults floors this to its minimum sample size
	}
	var rules []faultstore.Rule
	if spec != "" {
		var err error
		rules, err = faultstore.ParseSpec(spec)
		if err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("running chaos sweep (rates %v, fallback on/off)...", rates)
	points, err := benchx.FigFaults(context.Background(), rates, rules, spec, queries, seed)
	if err != nil {
		log.Fatal(err)
	}
	benchx.PrintFigFaults(os.Stdout, points)
	if err := benchx.WriteFaultsJSON("BENCH_faults.json", points); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote BENCH_faults.json")
}

func runFootprint(quick bool, seed int64) {
	log.Printf("running footprint figure (quick=%v)...", quick)
	rep, err := benchx.FigFootprint(context.Background(), quick, seed)
	if err != nil {
		log.Fatal(err)
	}
	benchx.PrintFigFootprint(os.Stdout, rep)
	if err := benchx.WriteFootprintJSON("BENCH_footprint.json", rep); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote BENCH_footprint.json")
}

func runLive(quick bool, seed int64) {
	log.Printf("running live-ingest figure (quick=%v)...", quick)
	rep, err := benchx.FigLive(context.Background(), quick, seed)
	if err != nil {
		log.Fatal(err)
	}
	benchx.PrintFigLive(os.Stdout, rep)
	if err := benchx.WriteLiveJSON("BENCH_live.json", rep); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote BENCH_live.json")
}

func runCluster(quick bool, seed int64) {
	log.Printf("running cluster scale-out figure (quick=%v)...", quick)
	rep, err := benchx.FigCluster(context.Background(), quick, seed)
	if rep != nil {
		benchx.PrintFigCluster(os.Stdout, rep)
	}
	if err != nil {
		log.Fatal(err)
	}
	if err := benchx.WriteClusterJSON("BENCH_cluster.json", rep); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote BENCH_cluster.json")
}

func runQoS(quick bool, seed int64) {
	log.Printf("running multi-tenant QoS figure (quick=%v)...", quick)
	rep, err := benchx.FigQoS(context.Background(), quick, seed)
	if rep != nil {
		benchx.PrintFigQoS(os.Stdout, rep)
		if werr := benchx.WriteQoSJSON("BENCH_qos.json", rep); werr != nil {
			log.Fatal(werr)
		}
		log.Printf("wrote BENCH_qos.json")
	}
	if err != nil {
		log.Fatal(err)
	}
}

func runExamples(seed int64, updates int) {
	log.Printf("building one-year deployment for the example queries...")
	dir, err := os.MkdirTemp("", "rased-examples")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	_, err = rased.Build(rased.BuildConfig{
		Dir:  dir,
		Days: 365,
		Gen: osmgen.Config{
			Seed:          seed,
			Start:         rased.NewDate(2021, time.January, 1),
			UpdatesPerDay: updates,
			SeedElements:  2000,
		},
		MonthlyRefinement: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	d, err := rased.Open(dir, rased.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	lo, hi, _ := d.Coverage()
	rep, err := benchx.RunExamples(d, lo, hi)
	if err != nil {
		log.Fatal(err)
	}
	benchx.PrintExamples(os.Stdout, rep)
}
