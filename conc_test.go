package rased

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"rased/internal/exec"
)

// concOptions is the full concurrency configuration: parallel fetches,
// cross-query singleflight, and admission control, over a cold (uncached)
// engine so every query exercises the disk path.
func concOptions() Options {
	return Options{
		LevelOptimization: true,
		FetchWorkers:      8,
		Singleflight:      true,
		MaxInflight:       16,
		MaxQueue:          64,
	}
}

// TestConcurrentMixedWorkload hammers one deployment with concurrent
// Analyze, Explain, and Sample calls (run under -race in make check) and
// verifies every concurrent Analyze answer equals the serial engine's answer
// for the same query.
func TestConcurrentMixedWorkload(t *testing.T) {
	d := getDeployment(t, concOptions())
	serial := getDeployment(t, Options{LevelOptimization: true})
	lo, hi, _ := d.Coverage()

	queries := []Query{
		{From: lo, To: hi},
		{From: lo, To: hi, GroupBy: GroupBy{Country: true}},
		{From: lo, To: hi, GroupBy: GroupBy{UpdateType: true, Date: ByMonth}},
		{From: lo + 10, To: hi - 5, GroupBy: GroupBy{ElementType: true}},
		{From: hi - 30, To: hi, GroupBy: GroupBy{RoadType: true, Date: ByWeek}},
	}
	want := make([]*Result, len(queries))
	for i, q := range queries {
		res, err := serial.Analyze(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	const loops = 8
	var wg sync.WaitGroup
	errc := make(chan error, 3*loops)
	for g := 0; g < loops; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, q := range queries {
				res, err := d.AnalyzeContext(context.Background(), q)
				if err != nil {
					errc <- err
					return
				}
				if res.Total != want[i].Total || len(res.Rows) != len(want[i].Rows) {
					t.Errorf("goroutine %d query %d: total=%d rows=%d, want total=%d rows=%d",
						g, i, res.Total, len(res.Rows), want[i].Total, len(want[i].Rows))
					return
				}
				for j := range res.Rows {
					if res.Rows[j] != want[i].Rows[j] {
						t.Errorf("goroutine %d query %d row %d: %+v != %+v",
							g, i, j, res.Rows[j], want[i].Rows[j])
						return
					}
				}
			}
		}(g)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, q := range queries {
				if _, err := d.Explain(q); err != nil {
					errc <- err
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := d.Sample(SampleQuery{From: lo, To: hi, N: 20, Seed: int64(g)}); err != nil {
				errc <- err
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestAnalyzeCancellation cancels a query mid-execution: the engine must
// return context.Canceled having read strictly fewer pages than the full
// plan needs.
func TestAnalyzeCancellation(t *testing.T) {
	d := getDeployment(t, Options{LevelOptimization: true, FetchWorkers: 4, Singleflight: true})
	lo, hi, _ := d.Coverage()
	q := Query{From: lo, To: hi, GroupBy: GroupBy{Date: ByDay}} // one cube per day: a wide plan

	exp, err := d.Engine.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if exp.DiskReads < 20 {
		t.Fatalf("plan too small to observe cancellation: %d disk reads", exp.DiskReads)
	}

	// Slow each page read down so the cancel lands mid-plan.
	d.Index.Store().SetReadLatency(2 * time.Millisecond)
	defer d.Index.Store().SetReadLatency(0)

	before := d.Index.Store().Stats().Reads
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	_, err = d.AnalyzeContext(ctx, q)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Analyze err = %v, want context.Canceled", err)
	}
	delta := d.Index.Store().Stats().Reads - before
	if delta >= int64(exp.DiskReads) {
		t.Errorf("cancelled query read %d pages, full plan is %d: cancellation saved nothing", delta, exp.DiskReads)
	}
}

// TestAdmissionRejectionEndToEnd verifies overload shedding through the
// public API: with one execution slot and no queue, a second concurrent
// query fails fast with exec.ErrRejected.
func TestAdmissionRejectionEndToEnd(t *testing.T) {
	d := getDeployment(t, Options{LevelOptimization: true, MaxInflight: 1, MaxQueue: 0})
	lo, hi, _ := d.Coverage()

	d.Index.Store().SetReadLatency(2 * time.Millisecond)
	defer d.Index.Store().SetReadLatency(0)

	before := d.Index.Store().Stats().Reads
	slow := make(chan error, 1)
	go func() {
		_, err := d.AnalyzeContext(context.Background(), Query{From: lo, To: hi, GroupBy: GroupBy{Date: ByDay}})
		slow <- err
	}()
	// Wait until the slow query is provably executing (its page reads are
	// ticking), so it — not our probe — holds the only slot.
	deadline := time.Now().Add(2 * time.Second)
	for d.Index.Store().Stats().Reads == before {
		if time.Now().After(deadline) {
			t.Fatal("slow query never started reading")
		}
		time.Sleep(time.Millisecond)
	}
	_, err := d.AnalyzeContext(context.Background(), Query{From: hi, To: hi})
	if !errors.Is(err, exec.ErrRejected) {
		t.Errorf("query during held slot: err = %v, want exec.ErrRejected", err)
	}
	if err := <-slow; err != nil {
		t.Fatal(err)
	}
}
