// Road-type analysis — the paper's Example 2 (Figure 4): "find the number of
// newly created or modified element types for each road type in USA since
// 2018": a group-by over road type and element type with country and date
// filters.
//
//	go run ./examples/roadtype_analysis [-dir existing-deployment] [-country name]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"rased"
	"rased/internal/osmgen"
)

func main() {
	log.SetFlags(0)
	dirFlag := flag.String("dir", "", "existing deployment directory (default: build a fresh one)")
	country := flag.String("country", "United States", "country or zone to analyze")
	flag.Parse()

	dir := *dirFlag
	if dir == "" {
		tmp, err := os.MkdirTemp("", "rased-roadtype")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
		log.Println("building a 240-day deployment (use -dir to reuse an existing one)...")
		if _, err := rased.Build(rased.BuildConfig{
			Dir:  dir,
			Days: 240,
			Gen: osmgen.Config{
				Seed:          11,
				Start:         rased.NewDate(2021, time.January, 1),
				UpdatesPerDay: 300,
				SeedElements:  2000,
			},
			MonthlyRefinement: true,
		}); err != nil {
			log.Fatal(err)
		}
	}

	d, err := rased.Open(dir, rased.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	lo, hi, _ := d.Coverage()

	// The paper's SQL, with "since 2018" mapped to the second half of the
	// deployment's coverage:
	//   SELECT U.RoadType, U.ElementType, COUNT(*)
	//   FROM UpdateList U
	//   WHERE U.Date AFTER ... AND U.Country = USA
	//     AND U.UpdateType IN [New, Update]
	//   GROUP BY U.RoadType, U.ElementType
	since := lo + (hi-lo)/2
	res, err := d.Analyze(rased.Query{
		From: since, To: hi,
		Countries:   []string{*country},
		UpdateTypes: []string{"create", "geometry", "metadata"},
		GroupBy:     rased.GroupBy{RoadType: true, ElementType: true},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("road network updates in %s since %s:\n\n", *country, since)
	fmt.Printf("%-28s%-12s%12s\n", "road type", "element", "updates")
	for i, r := range res.Rows {
		if i >= 30 {
			fmt.Printf("... %d more rows\n", len(res.Rows)-i)
			break
		}
		fmt.Printf("%-28s%-12s%12d\n", r.RoadType, r.ElementType, r.Count)
	}
	fmt.Printf("\ntotal %d updates, answered in %.2f ms\n",
		res.Total, float64(res.Stats.ElapsedNanos)/1e6)
}
