// Quickstart: build a small RASED deployment from a simulated OSM world and
// run a first analysis query through the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"rased"
	"rased/internal/geo"
	"rased/internal/osmgen"
)

func main() {
	log.SetFlags(0)

	// 1. Build a deployment: simulate 120 days of worldwide OSM edits, crawl
	// them daily, and bulk-load the hierarchical temporal index.
	dir, err := os.MkdirTemp("", "rased-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	rep, err := rased.Build(rased.BuildConfig{
		Dir:  dir,
		Days: 120,
		Gen: osmgen.Config{
			Seed:          42,
			Start:         rased.NewDate(2021, time.January, 1),
			UpdatesPerDay: 200,
			SeedElements:  1000,
		},
		MonthlyRefinement: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built deployment: %d updates over %d days (%.1f MB of cubes)\n\n",
		rep.Records, rep.Days, float64(rep.IndexBytes)/(1<<20))

	// 2. Open it with the full engine: level optimizer + cube cache.
	d, err := rased.Open(dir, rased.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	// 3. Ask a question: which countries changed the most this quarter?
	lo, hi, _ := d.Coverage()
	res, err := d.Analyze(rased.Query{
		From: lo, To: hi,
		GroupBy: rased.GroupBy{Country: true},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("top countries by road-network updates:")
	reg := geo.Default()
	rank := 0
	for _, row := range res.Rows {
		// Skip the zone rollups (World, continents, states) in this ranking.
		if v, ok := reg.ByName(row.Country); !ok || !reg.IsLeafCountry(v) {
			continue
		}
		rank++
		if rank > 10 {
			break
		}
		fmt.Printf("  %2d. %-28s %8d updates\n", rank, row.Country, row.Count)
	}
	fmt.Printf("\nanswered from %d precomputed cubes (%d disk reads) in %.2f ms\n",
		res.Stats.CubesFetched, res.Stats.DiskReads,
		float64(res.Stats.ElapsedNanos)/1e6)
}
