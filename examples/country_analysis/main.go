// Country analysis — the paper's Example 1 (Figures 2-3): "find the number
// of newly created or modified element types (node, way, relation) for each
// country road network" over a year, rendered as the paper's table format
// with per-element columns.
//
//	go run ./examples/country_analysis [-dir existing-deployment]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"rased"
	"rased/internal/osmgen"
)

func main() {
	log.SetFlags(0)
	dirFlag := flag.String("dir", "", "existing deployment directory (default: build a fresh one)")
	flag.Parse()

	dir := *dirFlag
	if dir == "" {
		tmp, err := os.MkdirTemp("", "rased-country")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
		log.Println("building a one-year deployment (use -dir to reuse an existing one)...")
		if _, err := rased.Build(rased.BuildConfig{
			Dir:  dir,
			Days: 365,
			Gen: osmgen.Config{
				Seed:          7,
				Start:         rased.NewDate(2021, time.January, 1),
				UpdatesPerDay: 250,
				SeedElements:  2000,
			},
			MonthlyRefinement: true,
		}); err != nil {
			log.Fatal(err)
		}
	}

	d, err := rased.Open(dir, rased.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	lo, hi, _ := d.Coverage()

	// The paper's SQL:
	//   SELECT U.Country, U.ElementType, COUNT(*)
	//   FROM UpdateList U
	//   WHERE U.Date BETWEEN 2021-01-01 AND 2021-12-31
	//     AND U.UpdateType IN [New, Update]
	//   GROUP BY U.Country, U.ElementType
	res, err := d.Analyze(rased.Query{
		From: lo, To: hi,
		UpdateTypes: []string{"create", "geometry", "metadata"},
		GroupBy:     rased.GroupBy{Country: true, ElementType: true},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Pivot into the Figure 3 table: one row per country, element columns.
	type rowT struct {
		all, node, way, rel uint64
	}
	table := map[string]*rowT{}
	for _, r := range res.Rows {
		t := table[r.Country]
		if t == nil {
			t = &rowT{}
			table[r.Country] = t
		}
		t.all += r.Count
		switch r.ElementType {
		case "node":
			t.node += r.Count
		case "way":
			t.way += r.Count
		case "relation":
			t.rel += r.Count
		}
	}
	countries := make([]string, 0, len(table))
	for c := range table {
		countries = append(countries, c)
	}
	sort.Slice(countries, func(a, b int) bool {
		return table[countries[a]].all > table[countries[b]].all
	})

	fmt.Printf("%-28s%12s%12s%12s%12s\n", "country", "All", "Ways", "Nodes", "Relations")
	for i, c := range countries {
		if i >= 20 {
			fmt.Printf("... %d more countries\n", len(countries)-i)
			break
		}
		t := table[c]
		fmt.Printf("%-28s%12d%12d%12d%12d\n", c, t.all, t.way, t.node, t.rel)
	}
	fmt.Printf("\n%d countries, %.2f ms, %d cubes fetched (%d from disk)\n",
		len(countries), float64(res.Stats.ElapsedNanos)/1e6,
		res.Stats.CubesFetched, res.Stats.DiskReads)
}
