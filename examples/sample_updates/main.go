// Sample update queries — the paper's Section IV-B: drill down from an
// aggregate to N concrete updates on the map, then follow one update's
// ChangesetID to every edit in its session (the paper hands this to a
// third-party changeset viewer).
//
//	go run ./examples/sample_updates [-dir existing-deployment]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"rased"
	"rased/internal/geo"
	"rased/internal/osmgen"
	"rased/internal/roads"
	"rased/internal/update"
)

func main() {
	log.SetFlags(0)
	dirFlag := flag.String("dir", "", "existing deployment directory (default: build a fresh one)")
	flag.Parse()

	dir := *dirFlag
	if dir == "" {
		tmp, err := os.MkdirTemp("", "rased-samples")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
		log.Println("building a 90-day deployment (use -dir to reuse an existing one)...")
		if _, err := rased.Build(rased.BuildConfig{
			Dir:  dir,
			Days: 90,
			Gen: osmgen.Config{
				Seed:          31,
				Start:         rased.NewDate(2021, time.March, 1),
				UpdatesPerDay: 250,
				SeedElements:  1500,
			},
		}); err != nil {
			log.Fatal(err)
		}
	}

	d, err := rased.Open(dir, rased.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	lo, hi, _ := d.Coverage()
	reg := geo.Default()

	// Step 1: an analysis query surfaces a statistic worth investigating.
	stats, err := d.Analyze(rased.Query{
		From: lo, To: hi,
		UpdateTypes: []string{"delete"},
		GroupBy:     rased.GroupBy{Country: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	// Zone rollups (World, continents) appear in the ranking too; drill into
	// the top leaf country, since samples are stored under leaf countries.
	var top rased.Row
	for _, r := range stats.Rows {
		if v, ok := reg.ByName(r.Country); ok && reg.IsLeafCountry(v) {
			top = r
			break
		}
	}
	if top.Country == "" {
		log.Fatal("no deletions in the deployment")
	}
	fmt.Printf("most road deletions: %s (%d deletions)\n\n", top.Country, top.Count)

	// Step 2: sample concrete deletions there to inspect on the map.
	cval, _ := reg.ByName(top.Country)
	samples, err := d.Sample(rased.SampleQuery{
		From: lo, To: hi,
		Countries:   []int{cval},
		UpdateTypes: []update.Type{update.Delete},
		N:           8,
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sample of %d deletions in %s:\n", len(samples), top.Country)
	for _, r := range samples {
		fmt.Printf("  %s  %-8s %-22s at (%8.4f, %9.4f)  changeset %d\n",
			r.Day, r.ElementType, roads.Name(int(r.RoadType)), r.Lat, r.Lon, r.ChangesetID)
	}
	if len(samples) == 0 {
		return
	}

	// Step 3: follow one sample's changeset — the full editing session.
	cs := samples[0].ChangesetID
	session, err := d.ByChangeset(cs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nchangeset %d contains %d road-network updates:\n", cs, len(session))
	for i, r := range session {
		if i >= 12 {
			fmt.Printf("  ... %d more\n", len(session)-i)
			break
		}
		fmt.Printf("  %-8s %-10s %-22s in %s\n",
			r.ElementType, r.UpdateType, roads.Name(int(r.RoadType)), reg.Name(int(r.Country)))
	}
}
