// Comparative time-series analysis — the paper's Example 3 (Figure 5):
// "compare the percentage of daily changes in road network in Germany,
// Singapore, and Qatar", a date-grouped percentage query rendered as ASCII
// sparklines.
//
//	go run ./examples/timeseries_comparison [-dir existing-deployment] [-countries a,b,c]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"rased"
	"rased/internal/osmgen"
)

func main() {
	log.SetFlags(0)
	dirFlag := flag.String("dir", "", "existing deployment directory (default: build a fresh one)")
	countriesFlag := flag.String("countries", "Germany,Singapore,Qatar", "comma-separated countries to compare")
	granularity := flag.String("granularity", "week", "time bucket: day, week, or month")
	flag.Parse()

	dir := *dirFlag
	if dir == "" {
		tmp, err := os.MkdirTemp("", "rased-timeseries")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
		log.Println("building a 180-day deployment (use -dir to reuse an existing one)...")
		if _, err := rased.Build(rased.BuildConfig{
			Dir:  dir,
			Days: 180,
			Gen: osmgen.Config{
				Seed:          23,
				Start:         rased.NewDate(2021, time.January, 1),
				UpdatesPerDay: 300,
				SeedElements:  3000,
			},
			MonthlyRefinement: true,
		}); err != nil {
			log.Fatal(err)
		}
	}

	d, err := rased.Open(dir, rased.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	lo, hi, _ := d.Coverage()

	countries := strings.Split(*countriesFlag, ",")
	for i := range countries {
		countries[i] = strings.TrimSpace(countries[i])
	}
	gran := rased.ByWeek
	switch *granularity {
	case "day":
		gran = rased.ByDay
	case "week":
	case "month":
		gran = rased.ByMonth
	default:
		log.Fatalf("unknown granularity %q", *granularity)
	}

	// The paper's SQL:
	//   SELECT U.Country, U.Date, Percentage(*)
	//   FROM UpdateList U
	//   WHERE U.Date BETWEEN ... AND U.Country IN [Germany, Singapore, Qatar]
	//   GROUP BY U.Country, U.Date
	res, err := d.Analyze(rased.Query{
		From: lo, To: hi,
		Countries:  countries,
		GroupBy:    rased.GroupBy{Country: true, Date: gran},
		Percentage: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Pivot into per-country series.
	series := map[string][]float64{}
	labels := []string{}
	seen := map[string]bool{}
	for _, r := range res.Rows {
		if !seen[r.Period] {
			seen[r.Period] = true
			labels = append(labels, r.Period)
		}
	}
	for _, c := range countries {
		series[c] = make([]float64, len(labels))
	}
	index := map[string]int{}
	for i, l := range labels {
		index[l] = i
	}
	var max float64
	for _, r := range res.Rows {
		series[r.Country][index[r.Period]] = r.Percentage
		if r.Percentage > max {
			max = r.Percentage
		}
	}

	marks := []rune(" ▁▂▃▄▅▆▇█")
	fmt.Printf("road network change per %s, %% of each country's network (peak %.4f%%):\n\n", *granularity, max)
	for _, c := range countries {
		var sb strings.Builder
		var total float64
		for _, v := range series[c] {
			total += v
			i := 0
			if max > 0 {
				i = int(v / max * float64(len(marks)-1))
			}
			sb.WriteRune(marks[i])
		}
		fmt.Printf("%-16s |%s|  cumulative %.3f%%\n", c, sb.String(), total)
	}
	fmt.Printf("\n%d buckets from %s to %s, answered in %.2f ms (%d cubes)\n",
		len(labels), lo, hi, float64(res.Stats.ElapsedNanos)/1e6, res.Stats.CubesFetched)
}
