package rased

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"rased/internal/cluster"
	"rased/internal/core"
	"rased/internal/temporal"
)

// TestCLIEndToEnd builds the real binaries and drives the full operator
// workflow: simulate artifacts → ingest from files → incremental append →
// query → explain. Skipped under -short (it compiles the commands).
func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI end-to-end in -short mode")
	}
	bin, err := buildCmds()
	if err != nil {
		t.Fatal(err)
	}
	run := func(name string, args ...string) string {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, name), args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	files := filepath.Join(t.TempDir(), "files")
	dep := filepath.Join(t.TempDir(), "dep")

	out := run("rased-simulate", "-dir", files, "-days", "35", "-updates", "120", "-history")
	if !strings.Contains(out, "wrote 35 days") {
		t.Fatalf("simulate output: %s", out)
	}

	out = run("rased-ingest", "-dir", dep, "-from-files", files,
		"-history-file", filepath.Join(files, "history.osm"))
	if !strings.Contains(out, "days ingested:     35") {
		t.Fatalf("ingest output: %s", out)
	}

	// Publish more days and append incrementally.
	run("rased-simulate", "-dir", files, "-days", "10", "-updates", "120",
		"-start", "2021-02-05", "-seed", "99")
	out = run("rased-ingest", "-dir", dep, "-from-files", files, "-append")
	if !strings.Contains(out, "days ingested:     10") {
		t.Fatalf("append output: %s", out)
	}

	out = run("rased-query", "-dir", dep, "-group-by", "country", "-limit", "3")
	if !strings.Contains(out, "total") || !strings.Contains(out, "country") {
		t.Fatalf("query output: %s", out)
	}

	out = run("rased-query", "-dir", dep, "-explain", "-from", "2021-01-05", "-to", "2021-02-10")
	if !strings.Contains(out, "plan: window") {
		t.Fatalf("explain output: %s", out)
	}

	out = run("rased-query", "-dir", dep, "-sample", "5")
	if !strings.Contains(out, "changeset") {
		t.Fatalf("sample output: %s", out)
	}
}

// buildCmds compiles ./cmd/... once per test binary run and returns the bin
// directory; both end-to-end tests share the build.
var buildCmds = sync.OnceValues(func() (string, error) {
	bin, err := os.MkdirTemp("", "rased-bin-")
	if err != nil {
		return "", err
	}
	build := exec.Command("go", "build", "-o", bin+string(os.PathSeparator), "./cmd/...")
	build.Dir = "."
	if out, err := build.CombinedOutput(); err != nil {
		return "", fmt.Errorf("go build ./cmd/...: %v\n%s", err, out)
	}
	return bin, nil
})

// serverProc is one rased-server process under test.
type serverProc struct {
	name string
	cmd  *exec.Cmd
	log  *bytes.Buffer
}

func startServer(t *testing.T, bin, name string, args ...string) *serverProc {
	t.Helper()
	p := &serverProc{name: name, log: &bytes.Buffer{}}
	p.cmd = exec.Command(filepath.Join(bin, "rased-server"), args...)
	p.cmd.Stdout = p.log
	p.cmd.Stderr = p.log
	if err := p.cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", name, err)
	}
	t.Cleanup(func() {
		if p.cmd.ProcessState == nil {
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
	})
	return p
}

// stop sends SIGTERM and waits for a clean exit.
func (p *serverProc) stop(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("signal %s: %v", p.name, err)
	}
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("%s did not exit cleanly: %v\n%s", p.name, err, p.log.String())
		}
	case <-time.After(15 * time.Second):
		p.cmd.Process.Kill()
		t.Fatalf("%s did not exit within 15s of SIGTERM\n%s", p.name, p.log.String())
	}
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("reserve port: %v", err)
	}
	defer l.Close()
	return l.Addr().String()
}

// waitHTTP polls url until it returns 200 (and, when want is non-empty, a body
// containing it).
func waitHTTP(t *testing.T, url, want string, p *serverProc) string {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	var last string
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			resp.Body.Close()
			last = fmt.Sprintf("%d %s", resp.StatusCode, buf.String())
			if resp.StatusCode == http.StatusOK && (want == "" || strings.Contains(buf.String(), want)) {
				return buf.String()
			}
		} else {
			last = err.Error()
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("%s never became ready (want %q, last %q)\nprocess log:\n%s", url, want, last, p.log.String())
	return ""
}

// TestCLIClusterEndToEnd drives the scale-out serving roles as real
// processes: two shards and a router over one deployment. It checks that a
// shard refuses sub-plans for partitions the map assigns elsewhere (typed
// not_owner over the wire), that the router answers the public API planned
// over the shards, and that the tier shuts down cleanly in drain order —
// router first, then the shards it was querying.
func TestCLIClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI end-to-end in -short mode")
	}
	bin, err := buildCmds()
	if err != nil {
		t.Fatal(err)
	}
	run := func(name string, args ...string) string {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, name), args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	files := filepath.Join(t.TempDir(), "files")
	dep := filepath.Join(t.TempDir(), "dep")
	run("rased-simulate", "-dir", files, "-days", "21", "-updates", "150", "-history")
	run("rased-ingest", "-dir", dep, "-from-files", files,
		"-history-file", filepath.Join(files, "history.osm"))

	// Two shards, replication 1: every partition has exactly one owner, so
	// each shard has partitions it must refuse.
	s0, s1, rtAddr := freeAddr(t), freeAddr(t), freeAddr(t)
	m := &cluster.Map{
		Version: 1, Groups: 4, Replication: 1,
		Shards: []cluster.Shard{{ID: "s0", Addr: s0}, {ID: "s1", Addr: s1}},
	}
	mapPath := filepath.Join(t.TempDir(), "map.json")
	if err := m.Save(mapPath); err != nil {
		t.Fatal(err)
	}

	shard0 := startServer(t, bin, "shard s0",
		"-shard", "-shard-id", "s0", "-cluster-map", mapPath, "-dir", dep, "-addr", s0, "-access-log=false")
	shard1 := startServer(t, bin, "shard s1",
		"-shard", "-shard-id", "s1", "-cluster-map", mapPath, "-dir", dep, "-addr", s1, "-access-log=false")
	waitHTTP(t, "http://"+s0+"/healthz", `"status":"ok"`, shard0)
	waitHTTP(t, "http://"+s1+"/healthz", `"status":"ok"`, shard1)

	// The deployment covers 2021; split that year's partitions by owner.
	var owned, foreign []string
	for g := 0; g < m.Groups; g++ {
		p := cluster.Partition{Year: 2021, Group: g}
		if m.Owners(p)[0].ID == "s0" {
			owned = append(owned, p.String())
		} else {
			foreign = append(foreign, p.String())
		}
	}
	if len(owned) == 0 || len(foreign) == 0 {
		t.Fatalf("degenerate ownership split: owned=%v foreign=%v", owned, foreign)
	}
	postExec := func(addr string, parts []string) (*http.Response, []byte) {
		t.Helper()
		body, err := json.Marshal(cluster.ExecRequest{
			MapVersion: 1,
			Partitions: parts,
			Query: core.Query{
				From: temporal.NewDay(2021, time.January, 1),
				To:   temporal.NewDay(2021, time.January, 21),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post("http://"+addr+"/internal/v1/exec", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("exec RPC: %v", err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	// A sub-plan for a partition the map assigns to s1 must come back as a
	// typed ownership refusal, not a silent wrong answer.
	resp, body := postExec(s0, foreign[:1])
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("non-owned exec: got HTTP %d, want 409: %s", resp.StatusCode, body)
	}
	var we struct {
		Code string `json:"code"`
	}
	if err := json.Unmarshal(body, &we); err != nil || we.Code != cluster.CodeNotOwner {
		t.Fatalf("non-owned exec: want code %q, got %s", cluster.CodeNotOwner, body)
	}

	// The same shard executes its own partitions.
	resp, body = postExec(s0, owned)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("owned exec: got HTTP %d: %s", resp.StatusCode, body)
	}
	var er cluster.ExecResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Result == nil {
		t.Fatalf("owned exec: bad response %s", body)
	}

	// Router over the tier: public API answers, /healthz aggregates both
	// shards as ok.
	router := startServer(t, bin, "router",
		"-router", "-cluster-map", mapPath, "-addr", rtAddr, "-access-log=false")
	health := waitHTTP(t, "http://"+rtAddr+"/healthz", `"status":"ok"`, router)
	if c := strings.Count(health, `"id":"s`); c != 2 {
		t.Fatalf("router /healthz reports %d shards, want 2: %s", c, health)
	}
	resp, err = http.Post("http://"+rtAddr+"/api/analysis", "application/json",
		strings.NewReader(`{"from":"2021-01-01","to":"2021-01-21","group_by":["country"]}`))
	if err != nil {
		t.Fatalf("routed analysis: %v", err)
	}
	var routed struct {
		Total uint64 `json:"total"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&routed); err != nil {
		t.Fatalf("routed analysis decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || routed.Total == 0 {
		t.Fatalf("routed analysis: HTTP %d total %d, want 200 with updates", resp.StatusCode, routed.Total)
	}

	// Drain order: the router stops first, while the shards it scattered to
	// are still serving; only then do the shards shut down.
	router.stop(t)
	if !strings.Contains(router.log.String(), "shutting down") {
		t.Fatalf("router log missing graceful shutdown:\n%s", router.log.String())
	}
	for _, addr := range []string{s0, s1} {
		r, err := http.Get("http://" + addr + "/healthz")
		if err != nil {
			t.Fatalf("shard %s not serving after router drain: %v", addr, err)
		}
		r.Body.Close()
	}
	for _, sh := range []*serverProc{shard0, shard1} {
		sh.stop(t)
		if !strings.Contains(sh.log.String(), "draining") {
			t.Fatalf("%s log missing graceful drain:\n%s", sh.name, sh.log.String())
		}
	}
}
