package rased

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIEndToEnd builds the real binaries and drives the full operator
// workflow: simulate artifacts → ingest from files → incremental append →
// query → explain. Skipped under -short (it compiles the commands).
func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI end-to-end in -short mode")
	}
	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin+string(os.PathSeparator), "./cmd/...")
	build.Dir = "."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/...: %v\n%s", err, out)
	}
	run := func(name string, args ...string) string {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, name), args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	files := filepath.Join(t.TempDir(), "files")
	dep := filepath.Join(t.TempDir(), "dep")

	out := run("rased-simulate", "-dir", files, "-days", "35", "-updates", "120", "-history")
	if !strings.Contains(out, "wrote 35 days") {
		t.Fatalf("simulate output: %s", out)
	}

	out = run("rased-ingest", "-dir", dep, "-from-files", files,
		"-history-file", filepath.Join(files, "history.osm"))
	if !strings.Contains(out, "days ingested:     35") {
		t.Fatalf("ingest output: %s", out)
	}

	// Publish more days and append incrementally.
	run("rased-simulate", "-dir", files, "-days", "10", "-updates", "120",
		"-start", "2021-02-05", "-seed", "99")
	out = run("rased-ingest", "-dir", dep, "-from-files", files, "-append")
	if !strings.Contains(out, "days ingested:     10") {
		t.Fatalf("append output: %s", out)
	}

	out = run("rased-query", "-dir", dep, "-group-by", "country", "-limit", "3")
	if !strings.Contains(out, "total") || !strings.Contains(out, "country") {
		t.Fatalf("query output: %s", out)
	}

	out = run("rased-query", "-dir", dep, "-explain", "-from", "2021-01-05", "-to", "2021-02-10")
	if !strings.Contains(out, "plan: window") {
		t.Fatalf("explain output: %s", out)
	}

	out = run("rased-query", "-dir", dep, "-sample", "5")
	if !strings.Contains(out, "changeset") {
		t.Fatalf("sample output: %s", out)
	}
}
